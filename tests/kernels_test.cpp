#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/bitset.hpp"
#include "core/deadline.hpp"
#include "ir/builder.hpp"
#include "merging/clique.hpp"
#include "mining/isomorphism.hpp"
#include "mining/mis.hpp"

/*
 * Differential suite for the bitset combinatorial kernels: every
 * optimized kernel must return byte-identical results to its retained
 * reference implementation — order included, truncation paths
 * included.  Seeds are fixed, so a mismatch is a determinism-contract
 * break, not flakiness.
 */
namespace {

using apex::Deadline;

/** Deterministic LCG so instances are identical on every platform. */
struct Lcg {
    std::uint32_t state;
    explicit Lcg(std::uint32_t seed) : state(seed) {}
    std::uint32_t next()
    {
        state = state * 1664525u + 1013904223u;
        return state >> 16;
    }
};

// ---------------------------------------------------------------------
// DenseBitset / BitsetMatrix substrate.

TEST(BitsetTest, SetTestCountReset) {
    apex::core::DenseBitset bs(130);
    EXPECT_TRUE(bs.none());
    bs.set(0);
    bs.set(63);
    bs.set(64);
    bs.set(129);
    EXPECT_EQ(bs.count(), 4u);
    EXPECT_TRUE(bs.test(63));
    EXPECT_FALSE(bs.test(62));
    bs.reset(63);
    EXPECT_FALSE(bs.test(63));
    EXPECT_EQ(bs.count(), 3u);
}

TEST(BitsetTest, SetAllRespectsUniverse) {
    apex::core::DenseBitset bs(70);
    bs.setAll();
    EXPECT_EQ(bs.count(), 70u);
}

TEST(BitsetTest, ForEachAscending) {
    apex::core::DenseBitset bs(200);
    const std::vector<int> want = {3, 64, 65, 127, 128, 199};
    for (int i : want)
        bs.set(static_cast<std::size_t>(i));
    std::vector<int> got;
    bs.forEach([&](int i) { got.push_back(i); });
    EXPECT_EQ(got, want);
}

TEST(BitsetTest, IntersectAndNotDisjoint) {
    apex::core::DenseBitset a(100), b(100);
    a.set(1);
    a.set(70);
    a.set(99);
    b.set(70);
    b.set(2);
    apex::core::DenseBitset c = a;
    c &= b;
    EXPECT_EQ(c.count(), 1u);
    EXPECT_TRUE(c.test(70));
    a.andNot(b);
    EXPECT_FALSE(a.test(70));
    EXPECT_TRUE(a.test(1));
    EXPECT_TRUE(a.disjoint(c) == false || !a.test(70));
    apex::core::DenseBitset d(100);
    d.set(5);
    EXPECT_TRUE(c.disjoint(d));
}

TEST(BitsetTest, MatrixRowsIndependent) {
    apex::core::BitsetMatrix m(3, 90);
    m.set(0, 5);
    m.set(1, 5);
    m.set(1, 80);
    EXPECT_TRUE(m.test(0, 5));
    EXPECT_FALSE(m.test(2, 5));
    EXPECT_EQ(m.rowCount(1), 2u);
    m.intersectRows(2, 0, 1);
    EXPECT_EQ(m.rowCount(2), 1u);
    EXPECT_TRUE(m.test(2, 5));
    m.clearRow(1);
    EXPECT_FALSE(m.rowAny(1));
    m.ensureRows(6);
    EXPECT_GE(m.rows(), 6u);
    EXPECT_FALSE(m.rowAny(5));
}

// ---------------------------------------------------------------------
// Clique: bitset BBMC vs reference, both bounds, truncation paths.

using apex::merging::CliqueBound;
using apex::merging::CliqueProblem;
using apex::merging::CliqueResult;
using apex::merging::maxWeightClique;
using apex::merging::maxWeightCliqueReference;

/** Random graph with integer-grid weights (exact FP comparisons are
 * well-defined on them). */
CliqueProblem
randomClique(int n, int density_pct, std::uint32_t seed)
{
    CliqueProblem p;
    p.n = n;
    p.weight.resize(n);
    p.adj.assign(n, std::vector<bool>(n, false));
    Lcg lcg(seed);
    for (int i = 0; i < n; ++i)
        p.weight[i] = 1.0 + static_cast<double>(lcg.next() % 7);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (static_cast<int>(lcg.next() % 100) < density_pct) {
                p.adj[i][j] = true;
                p.adj[j][i] = true;
            }
    return p;
}

void
expectSameClique(const CliqueResult &a, const CliqueResult &b,
                 bool compare_nodes)
{
    EXPECT_EQ(a.vertices, b.vertices);
    EXPECT_EQ(a.weight, b.weight); // exact: identical arithmetic
    EXPECT_EQ(a.optimal, b.optimal);
    EXPECT_EQ(a.timed_out, b.timed_out);
    if (compare_nodes)
        EXPECT_EQ(a.nodes, b.nodes);
}

TEST(CliqueDifferentialTest, MatchesColoringReferenceAtAmpleBudget) {
    for (int n : {1, 2, 10, 30, 60}) {
        for (int density : {10, 50, 90}) {
            SCOPED_TRACE("n=" + std::to_string(n) +
                         " density=" + std::to_string(density));
            const auto p = randomClique(n, density, 1000u + n + density);
            const auto got = maxWeightClique(p);
            const auto ref = maxWeightCliqueReference(
                p, 2'000'000, {}, CliqueBound::kColoring);
            expectSameClique(got, ref, /*compare_nodes=*/true);
            EXPECT_TRUE(got.optimal);
        }
    }
}

TEST(CliqueDifferentialTest, MatchesHistoricWeakBoundAnswers) {
    // The coloring bound prunes more nodes but — being admissible
    // under the fixed branching order with strict-improvement
    // incumbents — must return the same clique as the historic
    // weight-sum bound whenever neither search is truncated.
    for (int n : {12, 25, 45}) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto p = randomClique(n, 55, 77u * n);
        const auto got = maxWeightClique(p);
        const auto weak = maxWeightCliqueReference(
            p, 50'000'000, {}, CliqueBound::kWeightSum);
        ASSERT_TRUE(weak.optimal);
        EXPECT_EQ(got.vertices, weak.vertices);
        EXPECT_EQ(got.weight, weak.weight);
        // The point of the stronger bound: never more nodes, and on
        // non-trivial instances strictly fewer.
        EXPECT_LE(got.nodes, weak.nodes);
        if (n >= 25)
            EXPECT_LT(got.nodes, weak.nodes);
    }
}

TEST(CliqueDifferentialTest, BudgetTruncationIsByteIdentical) {
    // Under truncation the node count is part of the behaviour, so
    // the oracle must share the same (coloring) bound.
    const auto p = randomClique(40, 60, 424242u);
    for (std::int64_t budget : {1, 5, 37, 200, 5000}) {
        SCOPED_TRACE("budget=" + std::to_string(budget));
        const auto got = maxWeightClique(p, budget);
        const auto ref = maxWeightCliqueReference(
            p, budget, {}, CliqueBound::kColoring);
        expectSameClique(got, ref, /*compare_nodes=*/true);
    }
    EXPECT_FALSE(maxWeightClique(p, 1).optimal);
}

TEST(CliqueDifferentialTest, ExpiredDeadlineDegradesIdentically) {
    const auto p = randomClique(30, 50, 99u);
    const Deadline expired = Deadline::after(0);
    const auto got = maxWeightClique(p, 2'000'000, expired);
    const auto ref = maxWeightCliqueReference(
        p, 2'000'000, expired, CliqueBound::kColoring);
    expectSameClique(got, ref, /*compare_nodes=*/true);
    EXPECT_FALSE(got.optimal);
    EXPECT_TRUE(got.timed_out);
    // Degraded answer is still a valid clique.
    for (std::size_t a = 0; a < got.vertices.size(); ++a)
        for (std::size_t b = a + 1; b < got.vertices.size(); ++b)
            EXPECT_TRUE(p.adj[got.vertices[a]][got.vertices[b]]);
}

TEST(CliqueDifferentialTest, EmptyAndEdgelessGraphs) {
    CliqueProblem empty;
    expectSameClique(maxWeightClique(empty),
                     maxWeightCliqueReference(empty), true);

    const auto p = randomClique(8, 0, 5u); // no edges at all
    const auto got = maxWeightClique(p);
    expectSameClique(got, maxWeightCliqueReference(p), true);
    ASSERT_EQ(got.vertices.size(), 1u); // heaviest single vertex
}

// ---------------------------------------------------------------------
// MIS: inverted-index overlap + bitset exact search vs references.

using apex::mining::maximalIndependentSet;
using apex::mining::maximalIndependentSetReference;
using apex::mining::overlapGraph;
using apex::mining::overlapGraphReference;

/** Random occurrence sets: sorted unique node ids from a universe
 * sized to give a controllable overlap density. */
std::vector<std::vector<apex::ir::NodeId>>
randomOccurrences(int n, int universe, int per_occ, std::uint32_t seed)
{
    Lcg lcg(seed);
    std::vector<std::vector<apex::ir::NodeId>> occ(n);
    for (int i = 0; i < n; ++i) {
        for (int k = 0; k < per_occ; ++k)
            occ[i].push_back(static_cast<apex::ir::NodeId>(
                lcg.next() % universe));
        std::sort(occ[i].begin(), occ[i].end());
        occ[i].erase(std::unique(occ[i].begin(), occ[i].end()),
                     occ[i].end());
    }
    return occ;
}

TEST(MisDifferentialTest, OverlapGraphMatchesReference) {
    for (int n : {0, 1, 7, 20, 60}) {
        for (int universe : {4, 40, 400}) {
            SCOPED_TRACE("n=" + std::to_string(n) +
                         " universe=" + std::to_string(universe));
            const auto occ =
                randomOccurrences(n, universe, 4, 31u * n + universe);
            EXPECT_EQ(overlapGraph(occ), overlapGraphReference(occ));
        }
    }
}

TEST(MisDifferentialTest, ExactRegimeMatchesReference) {
    for (int n : {1, 5, 12, 24, 28}) {
        for (int universe : {6, 30, 200}) {
            SCOPED_TRACE("n=" + std::to_string(n) +
                         " universe=" + std::to_string(universe));
            const auto occ =
                randomOccurrences(n, universe, 3, 17u * n + universe);
            const auto got = maximalIndependentSet(occ);
            const auto ref = maximalIndependentSetReference(occ);
            EXPECT_EQ(got.chosen, ref.chosen);
            EXPECT_EQ(got.size, ref.size);
        }
    }
}

TEST(MisDifferentialTest, GreedyRegimeMatchesReference) {
    for (int n : {40, 90}) {
        for (int universe : {10, 120}) {
            SCOPED_TRACE("n=" + std::to_string(n) +
                         " universe=" + std::to_string(universe));
            const auto occ =
                randomOccurrences(n, universe, 5, 13u * n + universe);
            const auto got = maximalIndependentSet(occ);
            const auto ref = maximalIndependentSetReference(occ);
            EXPECT_EQ(got.chosen, ref.chosen);
            EXPECT_EQ(got.size, ref.size);
        }
    }
}

TEST(MisDifferentialTest, ChosenSetIsIndependentAndMaximal) {
    const auto occ = randomOccurrences(26, 24, 3, 2024u);
    const auto adj = overlapGraph(occ);
    const auto got = maximalIndependentSet(occ);
    std::vector<bool> in(occ.size(), false);
    for (int v : got.chosen)
        in[v] = true;
    for (int v : got.chosen)
        for (int nb : adj[v])
            EXPECT_FALSE(in[nb]);
    for (std::size_t v = 0; v < occ.size(); ++v) {
        if (in[v])
            continue;
        bool blocked = false;
        for (int nb : adj[v])
            blocked = blocked || in[nb];
        EXPECT_TRUE(blocked) << "set not maximal at " << v;
    }
}

// ---------------------------------------------------------------------
// Isomorphism: label-indexed matcher vs whole-graph-scan reference.

using apex::ir::Graph;
using apex::ir::GraphBuilder;
using apex::ir::Value;
using apex::mining::findEmbeddings;
using apex::mining::findEmbeddingsReference;

/** Random expression DAG: a pool of values grown by binary ops over
 * random earlier values, several outputs. */
Graph
randomTarget(int ops, std::uint32_t seed)
{
    Lcg lcg(seed);
    GraphBuilder b;
    std::vector<Value> pool;
    for (int i = 0; i < 4; ++i)
        pool.push_back(b.input());
    pool.push_back(b.constant(3));
    pool.push_back(b.constant(5));
    for (int i = 0; i < ops; ++i) {
        const Value x = pool[lcg.next() % pool.size()];
        const Value y = pool[lcg.next() % pool.size()];
        switch (lcg.next() % 4) {
        case 0: pool.push_back(b.add(x, y)); break;
        case 1: pool.push_back(b.sub(x, y)); break;
        case 2: pool.push_back(b.mul(x, y)); break;
        default: pool.push_back(b.min(x, y)); break;
        }
    }
    b.output(pool.back());
    return b.take();
}

std::vector<Graph>
testPatterns()
{
    std::vector<Graph> out;
    {
        GraphBuilder b; // bare multiply
        b.mul(b.input(), b.input());
        out.push_back(b.take());
    }
    {
        GraphBuilder b; // multiply-accumulate
        b.add(b.mul(b.input(), b.input()), b.input());
        out.push_back(b.take());
    }
    {
        GraphBuilder b; // add chain
        b.add(b.add(b.input(), b.input()), b.input());
        out.push_back(b.take());
    }
    {
        GraphBuilder b; // multiply by constant
        b.mul(b.input(), b.constant(7));
        out.push_back(b.take());
    }
    {
        GraphBuilder b; // sub(min) — port order matters
        b.sub(b.min(b.input(), b.input()), b.input());
        out.push_back(b.take());
    }
    return out;
}

void
expectSameEmbeddings(const Graph &pattern, const Graph &target,
                     std::size_t limit)
{
    const auto got = findEmbeddings(pattern, target, limit);
    const auto ref = findEmbeddingsReference(pattern, target, limit);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].map, ref[i].map) << "embedding " << i;
}

TEST(IsomorphismDifferentialTest, MatchesReferenceOnRandomTargets) {
    const auto patterns = testPatterns();
    for (std::uint32_t seed : {1u, 7u, 19u, 101u}) {
        const Graph target = randomTarget(40, seed);
        for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
            SCOPED_TRACE("seed=" + std::to_string(seed) +
                         " pattern=" + std::to_string(pi));
            expectSameEmbeddings(patterns[pi], target, 0);
        }
    }
}

TEST(IsomorphismDifferentialTest, LimitTruncationIsByteIdentical) {
    const auto patterns = testPatterns();
    const Graph target = randomTarget(60, 555u);
    for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
        for (std::size_t limit : {1u, 2u, 3u, 10u}) {
            SCOPED_TRACE("pattern=" + std::to_string(pi) +
                         " limit=" + std::to_string(limit));
            expectSameEmbeddings(patterns[pi], target, limit);
        }
    }
}

TEST(IsomorphismDifferentialTest, NoMatchingLabelReturnsEmpty) {
    GraphBuilder bt;
    bt.output(bt.add(bt.input(), bt.input()));
    const Graph target = bt.take();

    GraphBuilder bp;
    bp.mul(bp.input(), bp.input());
    const Graph pattern = bp.take();
    EXPECT_TRUE(findEmbeddings(pattern, target).empty());
    EXPECT_TRUE(findEmbeddingsReference(pattern, target).empty());
}

} // namespace
