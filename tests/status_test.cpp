// Tests for the unified error layer (status.hpp) and the
// deterministic fault injector (fault.hpp).
#include <set>

#include <gtest/gtest.h>

#include "core/fault.hpp"
#include "core/status.hpp"

namespace apex {
namespace {

TEST(StatusTest, DefaultConstructedIsOk) {
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kOk);
    EXPECT_EQ(s.toString(), "Ok");
}

TEST(StatusTest, CarriesCodeAndMessage) {
    Status s(ErrorCode::kRouteFailed, "congestion on link 7");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kRouteFailed);
    EXPECT_EQ(s.message(), "congestion on link 7");
}

TEST(StatusTest, ContextChainsInnermostFirst) {
    Status s = Status(ErrorCode::kRouteFailed, "congestion")
                   .withContext("routing PE_3 on 8x8 fabric")
                   .withContext("evaluating 'camera'");
    ASSERT_EQ(s.context().size(), 2u);
    EXPECT_EQ(s.context()[0], "routing PE_3 on 8x8 fabric");
    EXPECT_EQ(s.context()[1], "evaluating 'camera'");
    const std::string text = s.toString();
    EXPECT_NE(text.find("RouteFailed"), std::string::npos);
    EXPECT_NE(text.find("congestion"), std::string::npos);
    EXPECT_NE(text.find("[routing PE_3 on 8x8 fabric]"),
              std::string::npos);
}

TEST(StatusTest, WithContextIsNoOpOnOk) {
    Status s = Status::okStatus().withContext("ignored");
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(s.context().empty());
}

TEST(StatusTest, ExitCodesAreDistinctPerStage) {
    const ErrorCode codes[] = {
        ErrorCode::kOk,           ErrorCode::kInvalidArgument,
        ErrorCode::kParseError,   ErrorCode::kInvalidIr,
        ErrorCode::kMiningFailed, ErrorCode::kMergeInfeasible,
        ErrorCode::kMappingFailed, ErrorCode::kPlaceFailed,
        ErrorCode::kRouteFailed,  ErrorCode::kBudgetExhausted,
        ErrorCode::kEvaluationFailed, ErrorCode::kTimeout,
        ErrorCode::kInternal,     ErrorCode::kResourceExhausted,
    };
    std::set<int> seen;
    for (ErrorCode code : codes)
        seen.insert(exitCodeFor(code));
    EXPECT_EQ(seen.size(), std::size(codes));
    EXPECT_EQ(exitCodeFor(ErrorCode::kOk), 0);
}

TEST(StatusTest, StageForCodeMapsThePipeline) {
    EXPECT_EQ(stageForCode(ErrorCode::kParseError), "deserialize");
    EXPECT_EQ(stageForCode(ErrorCode::kInvalidIr), "validate");
    EXPECT_EQ(stageForCode(ErrorCode::kMiningFailed), "mine");
    EXPECT_EQ(stageForCode(ErrorCode::kMergeInfeasible), "merge");
    EXPECT_EQ(stageForCode(ErrorCode::kMappingFailed), "map");
    EXPECT_EQ(stageForCode(ErrorCode::kPlaceFailed), "place");
    EXPECT_EQ(stageForCode(ErrorCode::kBudgetExhausted), "place");
    EXPECT_EQ(stageForCode(ErrorCode::kRouteFailed), "route");
    EXPECT_EQ(stageForCode(ErrorCode::kEvaluationFailed), "evaluate");
    EXPECT_EQ(stageForCode(ErrorCode::kResourceExhausted),
              "durability");
}

TEST(StatusTest, ResourceExhaustionHasItsOwnExitCode) {
    // Exit 17 is the documented "machine ran out of disk/fds" code
    // (DESIGN.md Sec. 7h); it must stay distinct from the search-
    // budget code the placer uses (exit 10).
    EXPECT_EQ(exitCodeFor(ErrorCode::kResourceExhausted), 17);
    EXPECT_EQ(exitCodeFor(ErrorCode::kBudgetExhausted), 10);
    EXPECT_EQ(errorCodeName(ErrorCode::kResourceExhausted),
              "ResourceExhausted");
    EXPECT_EQ(errorCodeName(ErrorCode::kBudgetExhausted),
              "BudgetExhausted");
}

TEST(ResultTest, HoldsValue) {
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(*r, 42);
    EXPECT_EQ(r.valueOr(7), 42);
    EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorPropagatesAndValueThrows) {
    Result<int> r(Status(ErrorCode::kPlaceFailed, "no tiles"));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kPlaceFailed);
    EXPECT_EQ(r.valueOr(7), 7);
    EXPECT_THROW(r.value(), ApexError);
}

TEST(ResultTest, OkStatusDegradesToInternal) {
    Result<int> r(Status::okStatus());
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
}

TEST(ResultTest, ApexErrorCarriesStatus) {
    try {
        throw IrError(ErrorCode::kInvalidIr, "dangling operand");
    } catch (const ApexError &e) {
        EXPECT_EQ(e.code(), ErrorCode::kInvalidIr);
        EXPECT_NE(std::string(e.what()).find("dangling operand"),
                  std::string::npos);
    }
}

TEST(DiagnosticsTest, CollectsOrderedRecords) {
    Diagnostics d;
    d.error("place", Status(ErrorCode::kPlaceFailed, "seed 0 stuck"),
            1);
    d.info("place", "placement succeeded", 2);
    d.warning("route", "escalated to 7 tracks");
    EXPECT_EQ(d.records().size(), 3u);
    EXPECT_EQ(d.count(Severity::kError), 1);
    EXPECT_EQ(d.count(Severity::kWarning), 1);
    EXPECT_EQ(d.count(Severity::kInfo), 1);

    const auto place = d.forStage("place");
    ASSERT_EQ(place.size(), 2u);
    EXPECT_EQ(place[0].severity, Severity::kError);
    EXPECT_EQ(place[0].attempt, 1);
    EXPECT_EQ(place[1].severity, Severity::kInfo);
    EXPECT_EQ(place[1].attempt, 2);

    const std::string text = d.toString();
    EXPECT_NE(text.find("place"), std::string::npos);
    EXPECT_NE(text.find("seed 0 stuck"), std::string::npos);
}

TEST(DiagnosticsTest, MergeTagsScope) {
    Diagnostics inner;
    inner.error("route", Status(ErrorCode::kRouteFailed, "net 3"));
    Diagnostics outer;
    outer.merge(inner, "camera/pe_base");
    ASSERT_EQ(outer.records().size(), 1u);
    EXPECT_EQ(outer.records()[0].scope, "camera/pe_base");
    EXPECT_EQ(outer.records()[0].stage, "route");
}

TEST(ReportTest, SummaryNamesStageCodeAndAttempts) {
    ExplorationReport report;
    report.evaluated = 5;
    report.skipped = 1;
    StageFailure f;
    f.app = "camera";
    f.variant = "pe4_camera";
    f.stage = "route";
    f.status = Status(ErrorCode::kRouteFailed, "congestion");
    f.attempts = 3;
    report.failures.push_back(f);

    EXPECT_FALSE(report.allOk());
    const std::string text = report.summary();
    EXPECT_NE(text.find("5 evaluated"), std::string::npos);
    EXPECT_NE(text.find("camera/pe4_camera"), std::string::npos);
    EXPECT_NE(text.find("stage 'route'"), std::string::npos);
    EXPECT_NE(text.find("RouteFailed"), std::string::npos);
    EXPECT_NE(text.find("3 attempts"), std::string::npos);
}

// --- Fault injector ---------------------------------------------------

class FaultInjectorTest : public ::testing::Test {
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectorTest, DisarmedPassesEveryCall) {
    auto &inj = FaultInjector::instance();
    EXPECT_FALSE(inj.armed());
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(inj.onCall(FaultStage::kRoute).ok());
    EXPECT_EQ(inj.callCount(FaultStage::kRoute), 3);
}

TEST_F(FaultInjectorTest, FailsTheNthCallWithStageNaturalCode) {
    auto &inj = FaultInjector::instance();
    inj.arm(FaultStage::kRoute, 2);
    EXPECT_TRUE(inj.onCall(FaultStage::kRoute).ok());
    const Status s = inj.onCall(FaultStage::kRoute);
    EXPECT_EQ(s.code(), ErrorCode::kRouteFailed);
    EXPECT_NE(s.message().find("injected fault"), std::string::npos);
    EXPECT_TRUE(inj.onCall(FaultStage::kRoute).ok());
    // Other stages are unaffected.
    EXPECT_TRUE(inj.onCall(FaultStage::kPlace).ok());
}

TEST_F(FaultInjectorTest, CountArmsAWindowOfCalls) {
    auto &inj = FaultInjector::instance();
    inj.arm(FaultStage::kPlace, 2, 2);
    EXPECT_TRUE(inj.onCall(FaultStage::kPlace).ok());
    EXPECT_FALSE(inj.onCall(FaultStage::kPlace).ok());
    EXPECT_FALSE(inj.onCall(FaultStage::kPlace).ok());
    EXPECT_TRUE(inj.onCall(FaultStage::kPlace).ok());
}

TEST_F(FaultInjectorTest, ConfigureParsesSpecStrings) {
    auto &inj = FaultInjector::instance();
    ASSERT_TRUE(inj.configure("place:1:2,mine:3").ok());
    EXPECT_TRUE(inj.armed());
    EXPECT_FALSE(inj.onCall(FaultStage::kPlace).ok());
    EXPECT_FALSE(inj.onCall(FaultStage::kPlace).ok());
    EXPECT_TRUE(inj.onCall(FaultStage::kPlace).ok());
    EXPECT_TRUE(inj.onCall(FaultStage::kMine).ok());
    EXPECT_TRUE(inj.onCall(FaultStage::kMine).ok());
    EXPECT_EQ(inj.onCall(FaultStage::kMine).code(),
              ErrorCode::kMiningFailed);
}

TEST_F(FaultInjectorTest, ConfigureRejectsBadSpecs) {
    auto &inj = FaultInjector::instance();
    EXPECT_FALSE(inj.configure("warp:1").ok());
    EXPECT_FALSE(inj.configure("route").ok());
    EXPECT_FALSE(inj.configure("route:0").ok());
    EXPECT_FALSE(inj.configure("route:x").ok());
    // A rejected spec must leave the injector disarmed.
    EXPECT_FALSE(inj.armed());
}

TEST_F(FaultInjectorTest, FaultScopeDisarmsOnExit) {
    auto &inj = FaultInjector::instance();
    {
        FaultScope scope(FaultStage::kMerge, 1);
        EXPECT_TRUE(inj.armed());
        EXPECT_EQ(checkFault(FaultStage::kMerge).code(),
                  ErrorCode::kMergeInfeasible);
    }
    EXPECT_FALSE(inj.armed());
    EXPECT_TRUE(checkFault(FaultStage::kMerge).ok());
}

TEST_F(FaultInjectorTest, StageNamesRoundTrip) {
    for (int i = 0; i < kNumFaultStages; ++i) {
        const auto stage = static_cast<FaultStage>(i);
        const auto back = faultStageFromName(faultStageName(stage));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, stage);
    }
    EXPECT_FALSE(faultStageFromName("bogus").has_value());
}

} // namespace
} // namespace apex
