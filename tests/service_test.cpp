/**
 * Tests of the DSE service: protocol round-trips, the bounded
 * admission queue, and the daemon end-to-end over a real Unix-domain
 * socket — handshake and version skew, info/metrics requests, the
 * sweep byte-identity contract against an in-process runSweep,
 * request coalescing under concurrent identical clients, rejection
 * when the admission queue is full, and robustness against a client
 * that disconnects mid-stream.
 *
 * The telemetry registry is process-global and monotonic, so every
 * assertion on an apex.service.* counter takes a delta around the
 * scenario instead of reading absolutes.
 */
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoding.hpp"
#include "core/explorer.hpp"
#include "core/fault.hpp"
#include "core/sweep.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/wire.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "service/server.hpp"
#include "service/version.hpp"

namespace apex::service {
namespace {

// ---------------------------------------------------------------
// Protocol payload round-trips
// ---------------------------------------------------------------

TEST(ServiceProtocol, HelloRoundTrips)
{
    HelloRequest req;
    req.protocol = 7;
    req.client = "a test client";
    HelloRequest back;
    ASSERT_TRUE(decodeHello(encodeHello(req), &back));
    EXPECT_EQ(back.protocol, 7);
    EXPECT_EQ(back.client, "a test client");

    HelloReply rep;
    rep.protocol = 3;
    rep.server_version = "apex deadbeef (Release) protocol v3";
    HelloReply rback;
    ASSERT_TRUE(decodeHelloReply(encodeHelloReply(rep), &rback));
    EXPECT_EQ(rback.protocol, 3);
    EXPECT_EQ(rback.server_version, rep.server_version);
}

TEST(ServiceProtocol, InfoReplyRoundTrips)
{
    InfoReply info;
    info.protocol = kProtocolVersion;
    info.version = versionString();
    info.commit = buildCommit();
    info.flags = buildFlags();
    InfoReply back;
    ASSERT_TRUE(decodeInfoReply(encodeInfoReply(info), &back));
    EXPECT_EQ(back.protocol, info.protocol);
    EXPECT_EQ(back.version, info.version);
    EXPECT_EQ(back.commit, info.commit);
    EXPECT_EQ(back.flags, info.flags);
}

TEST(ServiceProtocol, SweepRequestRoundTripsEveryKnob)
{
    SweepRequest req;
    req.id = 42;
    req.priority = -3;
    req.level = "pnr";
    req.isolate = "process";
    req.cell_retries = 5;
    req.deadline_ms = 1234.5;
    req.cell_deadline_ms = 0.25;
    req.want_progress = true;
    SweepRequest back;
    ASSERT_TRUE(decodeSweepRequest(encodeSweepRequest(req), &back));
    EXPECT_EQ(back.id, 42u);
    EXPECT_EQ(back.priority, -3);
    EXPECT_EQ(back.level, "pnr");
    EXPECT_EQ(back.isolate, "process");
    EXPECT_EQ(back.cell_retries, 5);
    EXPECT_DOUBLE_EQ(back.deadline_ms, 1234.5);
    EXPECT_DOUBLE_EQ(back.cell_deadline_ms, 0.25);
    EXPECT_TRUE(back.want_progress);
}

TEST(ServiceProtocol, AckRejectProgressRoundTrip)
{
    SweepAck ack;
    ack.id = 9;
    ack.coalesced = true;
    SweepAck aback;
    ASSERT_TRUE(decodeAck(encodeAck(ack), &aback));
    EXPECT_EQ(aback.id, 9u);
    EXPECT_TRUE(aback.coalesced);

    SweepReject rej;
    rej.id = 10;
    rej.code = ErrorCode::kUnavailable;
    rej.reason = "admission queue full";
    rej.retry_after_ms = 333.25;
    SweepReject rback;
    ASSERT_TRUE(decodeReject(encodeReject(rej), &rback));
    EXPECT_EQ(rback.id, 10u);
    EXPECT_EQ(rback.code, ErrorCode::kUnavailable);
    EXPECT_EQ(rback.reason, "admission queue full");
    EXPECT_DOUBLE_EQ(rback.retry_after_ms, 333.25);

    SweepProgressFrame p;
    p.id = 11;
    p.done = 3;
    p.total = 27;
    p.app = "camera";
    p.variant = "pe_base";
    SweepProgressFrame pback;
    ASSERT_TRUE(decodeProgress(encodeProgress(p), &pback));
    EXPECT_EQ(pback.id, 11u);
    EXPECT_EQ(pback.done, 3);
    EXPECT_EQ(pback.total, 27);
    EXPECT_EQ(pback.app, "camera");
    EXPECT_EQ(pback.variant, "pe_base");
}

TEST(ServiceProtocol, SweepReplyRoundTripsEntriesAndFailures)
{
    SweepReply rep;
    rep.id = 77;
    rep.deadline_bounded = true;
    rep.deadline_expired = true;
    rep.cancelled = false;
    core::SweepEntry e;
    e.app = "harris";
    e.variant = "pe_base";
    e.result.success = true;
    e.result.pe_count = 42;
    e.result.pe_area = 1234.5;
    e.result.pe_energy = 6.789;
    rep.entries.push_back(e);
    rep.report.evaluated = 1;
    rep.report.skipped = 2;
    rep.report.degraded = 1;
    StageFailure f;
    f.app = "stereo";
    f.variant = "pe_base";
    f.stage = "mapping";
    f.status = Status(ErrorCode::kTimeout, "deadline expired");
    f.attempts = 2;
    rep.report.failures.push_back(f);

    SweepReply back;
    ASSERT_TRUE(decodeSweepReply(encodeSweepReply(rep), &back));
    EXPECT_EQ(back.id, 77u);
    EXPECT_TRUE(back.deadline_bounded);
    EXPECT_TRUE(back.deadline_expired);
    EXPECT_FALSE(back.cancelled);
    ASSERT_EQ(back.entries.size(), 1u);
    EXPECT_EQ(back.entries[0].app, "harris");
    EXPECT_EQ(back.entries[0].result.pe_count, 42);
    EXPECT_DOUBLE_EQ(back.entries[0].result.pe_area, 1234.5);
    ASSERT_EQ(back.report.failures.size(), 1u);
    EXPECT_EQ(back.report.failures[0].stage, "mapping");
    EXPECT_EQ(back.report.failures[0].status.code(),
              ErrorCode::kTimeout);
    // The round-tripped reply renders to the same bytes.
    EXPECT_EQ(renderSweepText(back.entries, back.report),
              renderSweepText(rep.entries, rep.report));
    EXPECT_EQ(sweepExitCode(back), sweepExitCode(rep));
}

TEST(ServiceProtocol, DecodersRejectGarbage)
{
    HelloRequest hello;
    EXPECT_FALSE(decodeHello("not a payload", &hello));
    SweepRequest sweep;
    EXPECT_FALSE(decodeSweepRequest("", &sweep));
    SweepReply reply;
    EXPECT_FALSE(decodeSweepReply("3\nabc\n", &reply));
}

TEST(ServiceProtocol, ForgedLengthsFailInsteadOfThrowing)
{
    // A checksum-valid frame can still carry hostile field values: a
    // string length of 10^18 or an entry count with nothing behind
    // it must decode to `false`, never to a huge allocation — a
    // bad_alloc/length_error escaping the dispatch loop would kill
    // the daemon for every connected client.
    HelloRequest hello;
    EXPECT_FALSE(
        decodeHello("1\n1000000000000000000\nx\n", &hello));
    SweepReply reply;
    // id, flags, then a forged entry count with no entries behind it
    // (the decoder must not reserve() on the count's say-so).
    EXPECT_FALSE(decodeSweepReply("7\n0 0 0\n999999999\n", &reply));
    // Valid prefix, then a forged per-string length inside an entry.
    EXPECT_FALSE(decodeSweepReply(
        "7\n0 0 0\n1\n1000000000000000000\nconv\n", &reply));
}

TEST(ServiceProtocol, GetStrBoundsAllocationToDeliveredBytes)
{
    // The wire-level guarantee behind the test above: getStr grows
    // its output only as the stream delivers bytes, so a forged
    // length costs at most one chunk of over-allocation.
    std::istringstream is("1000000000000000000\nabcd\n");
    std::string out;
    EXPECT_FALSE(core::enc::getStr(is, &out));
    EXPECT_LE(out.capacity(), 1u << 20);
}

TEST(ServiceProtocol, ExitCodeLadderMatchesBatchRules)
{
    SweepReply rep;
    rep.report.evaluated = 5;
    EXPECT_EQ(sweepExitCode(rep), 0);
    rep.cancelled = true;
    EXPECT_EQ(sweepExitCode(rep), exitCodeFor(ErrorCode::kCancelled));
    rep.cancelled = false;
    rep.report.evaluated = 0;
    rep.deadline_bounded = true;
    rep.deadline_expired = true;
    EXPECT_EQ(sweepExitCode(rep), exitCodeFor(ErrorCode::kTimeout));
    rep.deadline_bounded = false;
    rep.deadline_expired = false;
    StageFailure f;
    f.status = Status(ErrorCode::kMappingFailed, "no mapping");
    rep.report.failures.push_back(f);
    EXPECT_EQ(sweepExitCode(rep),
              exitCodeFor(ErrorCode::kMappingFailed));
}

// ---------------------------------------------------------------
// Admission queue
// ---------------------------------------------------------------

TEST(AdmissionQueue, OrdersByPriorityThenArrival)
{
    AdmissionQueue<int> q(8);
    ASSERT_TRUE(q.push(1, 0));
    ASSERT_TRUE(q.push(2, 5));
    ASSERT_TRUE(q.push(3, 5));
    ASSERT_TRUE(q.push(4, -1));
    EXPECT_EQ(q.pop().value(), 2); // Highest priority first,
    EXPECT_EQ(q.pop().value(), 3); // FIFO within a priority.
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 4);
}

TEST(AdmissionQueue, BoundedPushRejectsWhenFull)
{
    AdmissionQueue<int> q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_FALSE(q.push(3));
    EXPECT_EQ(q.depth(), 2u);
    (void)q.pop();
    EXPECT_TRUE(q.push(3)); // Space freed, admission resumes.
}

TEST(AdmissionQueue, ShutdownAbandonsQueueAndWakesPoppers)
{
    // Abandonment: an item queued at shutdown is dropped, never
    // delivered, and the queue stays closed.
    AdmissionQueue<int> abandoned(8);
    ASSERT_TRUE(abandoned.push(1));
    abandoned.shutdown();
    EXPECT_FALSE(abandoned.pop().has_value());
    EXPECT_EQ(abandoned.depth(), 0u);
    EXPECT_FALSE(abandoned.push(2)); // Closed for good.

    // Wakeup: a popper parked on an empty queue is released with
    // nullopt.  Waiting for depth()==0 guarantees the queued item
    // went to the popper, not to abandonment; whether the popper is
    // already blocked in its second pop() when shutdown lands or
    // only reaches it afterwards, both orders must yield nullopt —
    // so the test is deterministic under any scheduling.
    AdmissionQueue<int> q(8);
    ASSERT_TRUE(q.push(1));
    std::thread popper([&q] {
        EXPECT_TRUE(q.pop().has_value());
        EXPECT_FALSE(q.pop().has_value());
    });
    while (q.depth() != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    q.shutdown();
    popper.join();
}

TEST(AdmissionQueue, TracksDepthGauge)
{
    telemetry::Gauge &g =
        telemetry::gauge("test.service.queue_depth");
    AdmissionQueue<int> q(4, &g);
    EXPECT_EQ(g.value(), 0.0);
    (void)q.push(1);
    (void)q.push(2);
    EXPECT_EQ(g.value(), 2.0);
    (void)q.pop();
    EXPECT_EQ(g.value(), 1.0);
    q.shutdown();
    EXPECT_EQ(g.value(), 0.0);
}

// ---------------------------------------------------------------
// End-to-end over a real Unix-domain socket
// ---------------------------------------------------------------

std::string
scratchSocket(const std::string &tag)
{
    // sockaddr_un paths are short; /tmp keeps them under the limit
    // regardless of where gtest's TempDir points.
    return "/tmp/apex_service_test_" + tag + "_" +
           std::to_string(::getpid()) + ".sock";
}

/** A tiny request every e2e test can afford: the deadline is already
 * expired at admission, so every cell fails fast as a timeout and
 * the reply is still a full, deterministic report. */
SweepRequest
expiredSweepRequest()
{
    SweepRequest req;
    req.id = 1;
    req.level = "map";
    req.deadline_ms = 0.000001;
    return req;
}

TEST(ServiceEndToEnd, InfoAndMetricsRequests)
{
    ServerOptions options;
    options.unix_path = scratchSocket("info");
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    Client client;
    ASSERT_TRUE(client.connect(options.unix_path).ok());
    EXPECT_EQ(client.serverVersion(), versionString());

    InfoReply info;
    ASSERT_TRUE(client.info(&info).ok());
    EXPECT_EQ(info.protocol, kProtocolVersion);
    EXPECT_EQ(info.version, versionString());
    EXPECT_EQ(info.commit, buildCommit());

    std::string metrics;
    ASSERT_TRUE(client.metrics(&metrics).ok());
    EXPECT_NE(metrics.find("apex.service.queue_depth"),
              std::string::npos);
    client.goodbye();
    server.stop();
}

TEST(ServiceEndToEnd, HelloVersionMismatchIsRefusedByName)
{
    ServerOptions options;
    options.unix_path = scratchSocket("skew");
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    // Hand-rolled connection: the Client class always speaks the
    // right version, and the point is to speak the wrong one.
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof addr),
              0);
    HelloRequest hello;
    hello.protocol = kProtocolVersion + 1;
    hello.client = "time traveller";
    ASSERT_TRUE(runtime::writeFrame(fd, kServiceMagic,
                                    kServiceWireVersion, kFrameHello,
                                    encodeHello(hello))
                    .ok());
    runtime::FrameDecoder decoder(kServiceMagic, kServiceWireVersion);
    runtime::FramedRecord rec;
    runtime::DrainResult drained;
    do {
        // Single-read mode: the fd is blocking.
        drained = runtime::drainFd(fd, decoder,
                                   runtime::DrainMode::kSingleRead);
    } while (decoder.next(&rec) != runtime::DecodeResult::kFrame &&
             drained == runtime::DrainResult::kOpen);
    EXPECT_EQ(rec.type, kFrameHelloErr);
    EXPECT_NE(rec.payload.find("protocol mismatch"),
              std::string::npos);
    // Both versions are named, so the skew is diagnosable from
    // either side of the connection.
    EXPECT_NE(
        rec.payload.find("v" + std::to_string(kProtocolVersion + 1)),
        std::string::npos);
    EXPECT_NE(
        rec.payload.find("v" + std::to_string(kProtocolVersion)),
        std::string::npos);
    ::close(fd);
    server.stop();
}

TEST(ServiceEndToEnd, SweepReplyMatchesInProcessRunSweepBytes)
{
    ServerOptions options;
    options.unix_path = scratchSocket("bytes");
    options.jobs = 2; // Server-side resources must not leak into
                      // the reply bytes.
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    Client client;
    ASSERT_TRUE(client.connect(options.unix_path).ok());
    SweepRequest req = expiredSweepRequest();
    req.want_progress = true;
    SweepReply reply;
    int progress_frames = 0;
    ASSERT_TRUE(client
                    .runSweep(req, &reply,
                              [&progress_frames](
                                  const SweepProgressFrame &) {
                                  ++progress_frames;
                              })
                    .ok());
    client.goodbye();
    server.stop();

    // The oracle: the same sweep run in this process.  An expired
    // deadline produces no fresh cells, so no progress frames.
    core::SweepOptions opts;
    opts.level = core::EvalLevel::kPostMapping;
    opts.deadline = Deadline::after(0.000001);
    const core::Explorer explorer(model::defaultTech());
    const core::SweepOutcome oracle = core::runSweep(
        apps::allApps(), explorer, model::defaultTech(), opts);

    EXPECT_EQ(renderSweepText(reply.entries, reply.report),
              renderSweepText(oracle.entries, oracle.report));
    EXPECT_EQ(progress_frames, 0);
    EXPECT_TRUE(reply.deadline_bounded);
    EXPECT_TRUE(reply.deadline_expired);
    EXPECT_EQ(sweepExitCode(reply), exitCodeFor(ErrorCode::kTimeout));
}

TEST(ServiceEndToEnd, ConcurrentIdenticalSweepsCoalesce)
{
    telemetry::Counter &coalesced =
        telemetry::counter("apex.service.coalesced");
    telemetry::Counter &sweeps =
        telemetry::counter("apex.service.sweeps");
    telemetry::Counter &accepted =
        telemetry::counter("apex.service.accepted");
    const long long coalesced0 = coalesced.value();
    const long long sweeps0 = sweeps.value();
    const long long accepted0 = accepted.value();

    ServerOptions options;
    options.unix_path = scratchSocket("coalesce");
    // Hold each dequeued job briefly so even instant sweeps leave a
    // deterministic window for the duplicates to attach in.
    options.admission_hold_ms = 400.0;
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    constexpr int kClients = 4;
    std::vector<std::string> outputs(kClients);
    std::vector<int> codes(kClients, -1);
    std::vector<bool> coalesced_acks(kClients, false);
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            Client client;
            if (!client.connect(options.unix_path).ok())
                return;
            SweepAck ack;
            SweepReply reply;
            const Status s = client.runSweep(expiredSweepRequest(),
                                             &reply, nullptr, &ack);
            if (!s.ok())
                return;
            outputs[i] =
                renderSweepText(reply.entries, reply.report);
            codes[i] = sweepExitCode(reply);
            coalesced_acks[i] = ack.coalesced;
            client.goodbye();
        });
    for (std::thread &t : threads)
        t.join();
    server.stop();

    // Every client got the full report, with identical bytes.
    for (int i = 0; i < kClients; ++i) {
        ASSERT_FALSE(outputs[i].empty()) << "client " << i;
        EXPECT_EQ(outputs[i], outputs[0]) << "client " << i;
        EXPECT_EQ(codes[i], exitCodeFor(ErrorCode::kTimeout));
    }
    // All requests were accepted, duplicates attached to the one
    // execution: sweeps-run + coalesced = accepted.
    const long long ran = sweeps.value() - sweeps0;
    const long long attached = coalesced.value() - coalesced0;
    EXPECT_EQ(accepted.value() - accepted0, kClients);
    EXPECT_GT(attached, 0);
    EXPECT_EQ(ran + attached, kClients);
    int acked_coalesced = 0;
    for (const bool c : coalesced_acks)
        acked_coalesced += c ? 1 : 0;
    EXPECT_EQ(acked_coalesced, attached);
}

TEST(ServiceEndToEnd, FullQueueRejectsWithUnavailable)
{
    telemetry::Counter &rejected =
        telemetry::counter("apex.service.rejected");
    const long long rejected0 = rejected.value();

    ServerOptions options;
    options.unix_path = scratchSocket("reject");
    options.queue_depth = 1;
    options.executors = 1;
    options.admission_hold_ms = 1500.0;
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    // Three *distinct* requests (different retry budgets, so they do
    // not coalesce): the first occupies the executor, the second the
    // one queue slot, the third must be rejected.
    Client c1, c2, c3;
    ASSERT_TRUE(c1.connect(options.unix_path).ok());
    ASSERT_TRUE(c2.connect(options.unix_path).ok());
    ASSERT_TRUE(c3.connect(options.unix_path).ok());
    std::thread t1([&c1] {
        SweepRequest req = expiredSweepRequest();
        req.cell_retries = 1;
        SweepReply reply;
        EXPECT_TRUE(c1.runSweep(req, &reply).ok());
    });
    // Give request 1 time to be admitted and dequeued (the hold
    // keeps the executor busy while 2 and 3 arrive).
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    std::thread t2([&c2] {
        SweepRequest req = expiredSweepRequest();
        req.cell_retries = 2;
        SweepReply reply;
        EXPECT_TRUE(c2.runSweep(req, &reply).ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    SweepRequest req3 = expiredSweepRequest();
    req3.cell_retries = 3;
    SweepReply reply3;
    const Status s = c3.runSweep(req3, &reply3);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
    EXPECT_NE(s.message().find("admission queue full"),
              std::string::npos);
    EXPECT_GE(rejected.value() - rejected0, 1);
    t1.join();
    t2.join();
    c1.goodbye();
    c2.goodbye();
    c3.goodbye();
    server.stop();
}

TEST(ServiceEndToEnd, MidStreamDisconnectDoesNotHurtOthers)
{
    ServerOptions options;
    options.unix_path = scratchSocket("disconnect");
    options.admission_hold_ms = 300.0;
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    // A hand-rolled client that requests a sweep and slams the
    // connection before its report exists: handshake, sweep frame,
    // immediate close.  The daemon must drop the dead subscriber
    // when delivery fails, not wedge or crash.
    {
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof addr);
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, options.unix_path.c_str(),
                     sizeof addr.sun_path - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(
            ::connect(fd,
                      reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof addr),
            0);
        HelloRequest hello;
        hello.protocol = kProtocolVersion;
        hello.client = "doomed";
        ASSERT_TRUE(runtime::writeFrame(fd, kServiceMagic,
                                        kServiceWireVersion,
                                        kFrameHello,
                                        encodeHello(hello))
                        .ok());
        // Wait for hello.ok so the sweep frame is sent on a fully
        // established session.
        runtime::FrameDecoder decoder(kServiceMagic,
                                      kServiceWireVersion);
        runtime::FramedRecord rec;
        runtime::DrainResult drained;
        do {
            // Single-read mode: the fd is blocking.
            drained = runtime::drainFd(
                fd, decoder, runtime::DrainMode::kSingleRead);
        } while (decoder.next(&rec) !=
                     runtime::DecodeResult::kFrame &&
                 drained == runtime::DrainResult::kOpen);
        ASSERT_EQ(rec.type, kFrameHelloOk);
        ASSERT_TRUE(
            runtime::writeFrame(
                fd, kServiceMagic, kServiceWireVersion, kFrameSweep,
                encodeSweepRequest(expiredSweepRequest()))
                .ok());
        // Let the daemon admit the sweep, then vanish: the report
        // will be addressed to a session that no longer exists.
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        ::close(fd); // Gone before the report.
    }

    // The daemon must still serve a healthy client afterwards (the
    // hold guarantees the doomed sweep is still in flight when the
    // healthy request arrives).
    Client healthy;
    ASSERT_TRUE(healthy.connect(options.unix_path).ok());
    InfoReply info;
    EXPECT_TRUE(healthy.info(&info).ok());
    SweepReply reply;
    EXPECT_TRUE(healthy.runSweep(expiredSweepRequest(), &reply).ok());
    EXPECT_TRUE(reply.deadline_bounded);
    healthy.goodbye();
    server.stop();
}

// ---------------------------------------------------------------
// Resource exhaustion: shedding, accept backoff, resilient client
// ---------------------------------------------------------------

TEST(ServiceEndToEnd, QueueShedCarriesRetryAfterHintAndBoundsLog)
{
    telemetry::Counter &shed_queue =
        telemetry::counter("apex.service.shed_queue");
    telemetry::Counter &episodes =
        telemetry::counter("apex.service.saturation_episodes");
    const long long shed0 = shed_queue.value();
    const long long episodes0 = episodes.value();

    ServerOptions options;
    options.unix_path = scratchSocket("retry_after");
    options.queue_depth = 1;
    options.executors = 1;
    options.admission_hold_ms = 1500.0;
    options.retry_after_ms = 333.25;
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    Client c1, c2, c3, c4;
    ASSERT_TRUE(c1.connect(options.unix_path).ok());
    ASSERT_TRUE(c2.connect(options.unix_path).ok());
    ASSERT_TRUE(c3.connect(options.unix_path).ok());
    ASSERT_TRUE(c4.connect(options.unix_path).ok());
    std::thread t1([&c1] {
        SweepRequest req = expiredSweepRequest();
        req.cell_retries = 1;
        SweepReply reply;
        EXPECT_TRUE(c1.runSweep(req, &reply).ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    std::thread t2([&c2] {
        SweepRequest req = expiredSweepRequest();
        req.cell_retries = 2;
        SweepReply reply;
        EXPECT_TRUE(c2.runSweep(req, &reply).ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    // Two distinct rejected requests inside one saturation episode:
    // both frames carry the readmission hint, but the daemon logs
    // the episode once, not once per reject.
    SweepRequest req3 = expiredSweepRequest();
    req3.cell_retries = 3;
    SweepReply reply3;
    SweepReject rej3;
    const Status s3 =
        c3.runSweep(req3, &reply3, nullptr, nullptr, &rej3);
    ASSERT_FALSE(s3.ok());
    EXPECT_EQ(s3.code(), ErrorCode::kUnavailable);
    EXPECT_DOUBLE_EQ(rej3.retry_after_ms, 333.25);

    SweepRequest req4 = expiredSweepRequest();
    req4.cell_retries = 4;
    SweepReply reply4;
    SweepReject rej4;
    ASSERT_FALSE(
        c4.runSweep(req4, &reply4, nullptr, nullptr, &rej4).ok());
    EXPECT_DOUBLE_EQ(rej4.retry_after_ms, 333.25);

    EXPECT_GE(shed_queue.value() - shed0, 2);
    EXPECT_EQ(episodes.value() - episodes0, 1);
    const Diagnostics diag = server.diagnostics();
    int admission_records = 0;
    for (const DiagnosticRecord &r : diag.records())
        if (r.stage == "admission")
            ++admission_records;
    EXPECT_EQ(admission_records, 1);

    t1.join();
    t2.join();
    c1.goodbye();
    c2.goodbye();
    c3.goodbye();
    c4.goodbye();
    server.stop();
}

TEST(ServiceEndToEnd, SessionCapShedsParallelSweepsFromOneSession)
{
    telemetry::Counter &shed_session =
        telemetry::counter("apex.service.shed_session");
    const long long shed0 = shed_session.value();

    ServerOptions options;
    options.unix_path = scratchSocket("sessioncap");
    options.session_cap = 1;
    options.admission_hold_ms = 800.0;
    options.retry_after_ms = 125.0;
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    // One hand-rolled session fires two *distinct* sweeps
    // back-to-back without waiting: the first is admitted, the
    // second trips the per-session cap and is shed — a greedy client
    // pays for its own burst instead of starving other sessions.
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof addr),
              0);
    HelloRequest hello;
    hello.protocol = kProtocolVersion;
    hello.client = "greedy";
    ASSERT_TRUE(runtime::writeFrame(fd, kServiceMagic,
                                    kServiceWireVersion, kFrameHello,
                                    encodeHello(hello))
                    .ok());
    runtime::FrameDecoder decoder(kServiceMagic, kServiceWireVersion);
    runtime::FramedRecord rec;
    auto read_frame = [&fd, &decoder, &rec] {
        runtime::DrainResult drained = runtime::DrainResult::kOpen;
        while (decoder.next(&rec) != runtime::DecodeResult::kFrame &&
               drained == runtime::DrainResult::kOpen)
            drained = runtime::drainFd(
                fd, decoder, runtime::DrainMode::kSingleRead);
    };
    read_frame();
    ASSERT_EQ(rec.type, kFrameHelloOk);

    SweepRequest first = expiredSweepRequest();
    first.id = 1;
    first.cell_retries = 1;
    SweepRequest second = expiredSweepRequest();
    second.id = 2;
    second.cell_retries = 2;
    ASSERT_TRUE(runtime::writeFrame(fd, kServiceMagic,
                                    kServiceWireVersion, kFrameSweep,
                                    encodeSweepRequest(first))
                    .ok());
    ASSERT_TRUE(runtime::writeFrame(fd, kServiceMagic,
                                    kServiceWireVersion, kFrameSweep,
                                    encodeSweepRequest(second))
                    .ok());

    read_frame();
    ASSERT_EQ(rec.type, kFrameAck);
    SweepAck ack;
    ASSERT_TRUE(decodeAck(rec.payload, &ack));
    EXPECT_EQ(ack.id, 1u);

    read_frame();
    ASSERT_EQ(rec.type, kFrameReject);
    SweepReject rej;
    ASSERT_TRUE(decodeReject(rec.payload, &rej));
    EXPECT_EQ(rej.id, 2u);
    EXPECT_EQ(rej.code, ErrorCode::kUnavailable);
    EXPECT_NE(rej.reason.find("in flight"), std::string::npos);
    EXPECT_DOUBLE_EQ(rej.retry_after_ms, 125.0);
    EXPECT_GE(shed_session.value() - shed0, 1);

    ::close(fd);
    server.stop();
}

TEST(ServiceEndToEnd, AcceptExhaustionPausesListenerAndRecovers)
{
    telemetry::Counter &exhausted =
        telemetry::counter("apex.resource.accept_exhausted");
    const long long exhausted0 = exhausted.value();

    ServerOptions options;
    options.unix_path = scratchSocket("emfile");
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    // The first two accept() calls fail as if the fd table were
    // full.  The daemon must pause the listener with backoff (no
    // spin on the permanently readable fd) and pick the pending
    // connection up when "fds free up" — the client just sees a
    // slightly slower connect, never an error.
    Status connected;
    {
        FaultScope fault(FaultStage::kAcceptEmfile, 1, 2);
        Client client;
        connected = client.connect(options.unix_path);
        EXPECT_TRUE(connected.ok()) << connected.toString();
        if (connected.ok()) {
            InfoReply info;
            EXPECT_TRUE(client.info(&info).ok());
            client.goodbye();
        }
    }
    EXPECT_EQ(exhausted.value() - exhausted0, 2);
    const Diagnostics diag = server.diagnostics();
    int accept_records = 0;
    for (const DiagnosticRecord &r : diag.records())
        if (r.stage == "accept")
            ++accept_records;
    EXPECT_EQ(accept_records, 1); // One episode, one record.
    server.stop();
}

TEST(ServiceEndToEnd, ResilientClientAbsorbsShedAndHonorsHint)
{
    ServerOptions options;
    options.unix_path = scratchSocket("resilient_shed");
    options.queue_depth = 1;
    options.executors = 1;
    options.admission_hold_ms = 600.0;
    options.retry_after_ms = 222.0;
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    Client c1, c2;
    ASSERT_TRUE(c1.connect(options.unix_path).ok());
    ASSERT_TRUE(c2.connect(options.unix_path).ok());
    std::thread t1([&c1] {
        SweepRequest req = expiredSweepRequest();
        req.cell_retries = 1;
        SweepReply reply;
        EXPECT_TRUE(c1.runSweep(req, &reply).ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    std::thread t2([&c2] {
        SweepRequest req = expiredSweepRequest();
        req.cell_retries = 2;
        SweepReply reply;
        EXPECT_TRUE(c2.runSweep(req, &reply).ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // The resilient path lands the sweep despite being shed: it
    // sleeps at least the daemon's hint between attempts (the
    // daemon shapes its own readmission traffic) and resubmits
    // until the queue drains.
    SweepRequest req = expiredSweepRequest();
    req.cell_retries = 3;
    RetryPolicy policy;
    policy.max_attempts = 10;
    policy.base_ms = 1.0;
    policy.max_ms = 10.0;
    policy.jitter_seed = 42;
    std::vector<double> delays;
    policy.sleep_fn = [&delays](double ms) {
        delays.push_back(ms);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
    };
    SweepReply reply;
    RetryStats stats;
    const Status s = runSweepResilient(options.unix_path, 0, req,
                                       policy, &reply, nullptr,
                                       &stats);
    ASSERT_TRUE(s.ok()) << s.toString();
    EXPECT_GE(stats.attempts, 2);
    EXPECT_GE(stats.rejects, 1);
    ASSERT_FALSE(delays.empty());
    for (const double d : delays)
        EXPECT_GE(d, 222.0); // Every backoff honors the hint.
    EXPECT_TRUE(reply.deadline_bounded);

    t1.join();
    t2.join();
    c1.goodbye();
    c2.goodbye();
    server.stop();
}

TEST(ServiceEndToEnd, ResilientClientFailsFastOnPermanentReject)
{
    ServerOptions options;
    options.unix_path = scratchSocket("resilient_perm");
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    // A request that can never succeed: retrying it would fail
    // identically forever, so the resilient path must not burn its
    // attempt budget on it.
    SweepRequest req = expiredSweepRequest();
    req.level = "bogus";
    RetryPolicy policy;
    policy.max_attempts = 5;
    int sleeps = 0;
    policy.sleep_fn = [&sleeps](double) { ++sleeps; };
    SweepReply reply;
    RetryStats stats;
    const Status s = runSweepResilient(options.unix_path, 0, req,
                                       policy, &reply, nullptr,
                                       &stats);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(stats.attempts, 1);
    EXPECT_EQ(stats.rejects, 1);
    EXPECT_EQ(sleeps, 0);
    server.stop();
}

TEST(ServiceEndToEnd, ResilientClientSurvivesLateStartingDaemon)
{
    ServerOptions options;
    options.unix_path = scratchSocket("resilient_late");

    // The client starts first — the daemon is "restarting".  Every
    // refused connect is a transient failure worth a retry; once the
    // daemon comes up, the sweep lands.
    SweepReply reply;
    RetryStats stats;
    Status result;
    std::thread client([&options, &reply, &stats, &result] {
        RetryPolicy policy;
        policy.max_attempts = 20;
        policy.base_ms = 100.0;
        policy.max_ms = 400.0;
        policy.jitter_seed = 7; // Real sleeps, deterministic jitter.
        result = runSweepResilient(options.unix_path, 0,
                                   expiredSweepRequest(), policy,
                                   &reply, nullptr, &stats);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    Server server(options);
    ASSERT_TRUE(server.start().ok());
    client.join();
    ASSERT_TRUE(result.ok()) << result.toString();
    EXPECT_GE(stats.attempts, 2);
    EXPECT_GE(stats.disconnects, 1);
    EXPECT_TRUE(reply.deadline_bounded);
    server.stop();
}

TEST(ServiceEndToEnd, ResilientClientExhaustsRetriesWithHonestStatus)
{
    // No daemon will ever appear: the resilient path must exhaust
    // its budget and return the last transient Status with the
    // attempt count in the message — never hang, never throw.
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.sleep_fn = [](double) {}; // No real sleeping.
    SweepReply reply;
    RetryStats stats;
    const Status s = runSweepResilient(
        scratchSocket("resilient_nobody"), 0, expiredSweepRequest(),
        policy, &reply, nullptr, &stats);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
    EXPECT_EQ(stats.attempts, 3);
    EXPECT_EQ(stats.disconnects, 3);
    EXPECT_NE(s.toString().find("after 3 attempts"),
              std::string::npos);
}

// ---------------------------------------------------------------
// Request-scoped observability (protocol v3)
// ---------------------------------------------------------------

TEST(ServiceProtocol, MintTraceIdIsNonZeroAndDistinct)
{
    const std::uint64_t a = mintTraceId();
    const std::uint64_t b = mintTraceId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}

TEST(ServiceProtocol, SweepRequestTraceIdRoundTripsAndToleratesV2)
{
    SweepRequest req = expiredSweepRequest();
    req.trace_id = 0xdeadbeefcafef00dull;
    SweepRequest back;
    ASSERT_TRUE(decodeSweepRequest(encodeSweepRequest(req), &back));
    EXPECT_EQ(back.trace_id, 0xdeadbeefcafef00dull);

    // A v2 encoder never wrote the trailer; the v3 decoder must read
    // such a payload with trace_id falling back to 0 (unscoped).
    SweepRequest v2 = expiredSweepRequest();
    std::string payload = encodeSweepRequest(v2);
    ASSERT_TRUE(payload.size() >= 2 &&
                payload.compare(payload.size() - 2, 2, "0\n") == 0);
    payload.erase(payload.size() - 2);
    SweepRequest old_back;
    old_back.trace_id = 77; // Must be overwritten, not inherited.
    ASSERT_TRUE(decodeSweepRequest(payload, &old_back));
    EXPECT_EQ(old_back.trace_id, 0u);
    EXPECT_DOUBLE_EQ(old_back.deadline_ms, v2.deadline_ms);
}

TEST(ServiceProtocol, ProgressFrameTraceIdRoundTripsAndToleratesV2)
{
    SweepProgressFrame p;
    p.id = 11;
    p.done = 3;
    p.total = 27;
    p.app = "camera";
    p.variant = "pe_base";
    p.trace_id = 12345;
    SweepProgressFrame back;
    ASSERT_TRUE(decodeProgress(encodeProgress(p), &back));
    EXPECT_EQ(back.trace_id, 12345u);

    p.trace_id = 0;
    std::string payload = encodeProgress(p);
    ASSERT_TRUE(payload.size() >= 2 &&
                payload.compare(payload.size() - 2, 2, "0\n") == 0);
    payload.erase(payload.size() - 2);
    SweepProgressFrame old_back;
    old_back.trace_id = 9;
    ASSERT_TRUE(decodeProgress(payload, &old_back));
    EXPECT_EQ(old_back.trace_id, 0u);
    EXPECT_EQ(old_back.variant, "pe_base");
}

TEST(ServiceProtocol, TraceConversationRoundTrips)
{
    TraceRequest req;
    req.trace_id = 0x1234;
    TraceRequest rback;
    ASSERT_TRUE(
        decodeTraceRequest(encodeTraceRequest(req), &rback));
    EXPECT_EQ(rback.trace_id, 0x1234u);

    TraceReply reply;
    reply.trace_id = 0x1234;
    reply.dropped = 2;
    reply.evicted = 5;
    telemetry::SpanEvent ev;
    ev.name = "service.execute";
    ev.scope = "camera";
    ev.args = "\"app\":\"camera\"";
    ev.ts_us = 12.5;
    ev.dur_us = 3.25;
    ev.lane = 1;
    ev.thread_ord = 4;
    ev.depth = 2;
    ev.trace_id = 0x1234;
    reply.events.push_back(ev);
    ev.name = "sweep";
    ev.lane = -1;
    reply.events.push_back(ev);

    TraceReply back;
    ASSERT_TRUE(decodeTraceReply(encodeTraceReply(reply), &back));
    EXPECT_EQ(back.trace_id, 0x1234u);
    EXPECT_EQ(back.dropped, 2);
    EXPECT_EQ(back.evicted, 5);
    ASSERT_EQ(back.events.size(), 2u);
    EXPECT_EQ(back.events[0].name, "service.execute");
    EXPECT_EQ(back.events[0].scope, "camera");
    EXPECT_EQ(back.events[0].args, "\"app\":\"camera\"");
    EXPECT_DOUBLE_EQ(back.events[0].ts_us, 12.5);
    EXPECT_DOUBLE_EQ(back.events[0].dur_us, 3.25);
    EXPECT_EQ(back.events[0].lane, 1);
    EXPECT_EQ(back.events[0].thread_ord, 4);
    EXPECT_EQ(back.events[0].depth, 2);
    EXPECT_EQ(back.events[0].trace_id, 0x1234u);
    EXPECT_EQ(back.events[1].lane, -1);
}

TEST(ServiceProtocol, StatuszConversationRoundTripsAndRenders)
{
    StatuszRequest req;
    req.max_samples = 7;
    StatuszRequest rback;
    ASSERT_TRUE(
        decodeStatuszRequest(encodeStatuszRequest(req), &rback));
    EXPECT_EQ(rback.max_samples, 7);

    StatuszReply reply;
    reply.interval_ms = 250.0;
    StatusSnapshot snap;
    snap.ts_ms = 1000.5;
    snap.sessions = 3;
    snap.queue_depth = 2;
    snap.active_sweeps = 1;
    snap.inflight_bytes = 4096;
    snap.accepted = 10;
    snap.rejected = 1;
    snap.coalesced = 4;
    snap.sweeps = 6;
    snap.cache_hits = 100;
    snap.cache_misses = 20;
    snap.worker_restarts = 2;
    snap.trace_dropped = 9;
    snap.request_p50_ms = 5.0;
    snap.request_p99_ms = 50.0;
    reply.samples.push_back(snap);
    snap.accepted = 12;
    reply.samples.push_back(snap);

    StatuszReply back;
    ASSERT_TRUE(
        decodeStatuszReply(encodeStatuszReply(reply), &back));
    EXPECT_DOUBLE_EQ(back.interval_ms, 250.0);
    ASSERT_EQ(back.samples.size(), 2u);
    EXPECT_DOUBLE_EQ(back.samples[0].ts_ms, 1000.5);
    EXPECT_EQ(back.samples[0].sessions, 3);
    EXPECT_EQ(back.samples[0].queue_depth, 2);
    EXPECT_EQ(back.samples[0].active_sweeps, 1);
    EXPECT_EQ(back.samples[0].inflight_bytes, 4096);
    EXPECT_EQ(back.samples[0].accepted, 10);
    EXPECT_EQ(back.samples[0].rejected, 1);
    EXPECT_EQ(back.samples[0].coalesced, 4);
    EXPECT_EQ(back.samples[0].sweeps, 6);
    EXPECT_EQ(back.samples[0].cache_hits, 100);
    EXPECT_EQ(back.samples[0].cache_misses, 20);
    EXPECT_EQ(back.samples[0].worker_restarts, 2);
    EXPECT_EQ(back.samples[0].trace_dropped, 9);
    EXPECT_DOUBLE_EQ(back.samples[0].request_p50_ms, 5.0);
    EXPECT_DOUBLE_EQ(back.samples[0].request_p99_ms, 50.0);
    EXPECT_EQ(back.samples[1].accepted, 12);

    const std::string json = statuszJson(back);
    EXPECT_EQ(json.find("{\"apex_statusz\":1"), 0u);
    EXPECT_NE(json.find("\"accepted\":"), std::string::npos);
    EXPECT_NE(json.find("\"request_p99_ms\":"), std::string::npos);

    const std::string text = renderStatuszText(back);
    EXPECT_NE(text.find("apexd statusz"), std::string::npos);
    EXPECT_NE(text.find("queue"), std::string::npos);

    StatuszReply empty;
    EXPECT_NE(renderStatuszText(empty).find("no samples"),
              std::string::npos);
}

TEST(ServiceEndToEnd, V2ClientNegotiatesAndSweepsWithoutTraceIds)
{
    ServerOptions options;
    options.unix_path = scratchSocket("v2compat");
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    // Hand-rolled v2 peer: the Client class always speaks v3, and
    // the point of this regression test is version skew — an old
    // client must still negotiate, sweep and get its report.
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof addr),
              0);
    runtime::FrameDecoder decoder(kServiceMagic,
                                  kServiceWireVersion);
    const auto readFrame = [&](runtime::FramedRecord *rec) {
        runtime::DrainResult drained = runtime::DrainResult::kOpen;
        while (decoder.next(rec) != runtime::DecodeResult::kFrame) {
            if (drained != runtime::DrainResult::kOpen)
                return false;
            drained = runtime::drainFd(
                fd, decoder, runtime::DrainMode::kSingleRead);
        }
        return true;
    };

    HelloRequest hello;
    hello.protocol = kMinProtocolVersion; // v2.
    hello.client = "legacy client";
    ASSERT_TRUE(runtime::writeFrame(fd, kServiceMagic,
                                    kServiceWireVersion, kFrameHello,
                                    encodeHello(hello))
                    .ok());
    runtime::FramedRecord rec;
    ASSERT_TRUE(readFrame(&rec));
    ASSERT_EQ(rec.type, kFrameHelloOk);
    HelloReply hello_reply;
    ASSERT_TRUE(decodeHelloReply(rec.payload, &hello_reply));
    // The session speaks the *client's* version, not the server's.
    EXPECT_EQ(hello_reply.protocol, kMinProtocolVersion);

    // A genuine v2 sweep payload: no trace-id trailer.
    std::string payload = encodeSweepRequest(expiredSweepRequest());
    ASSERT_TRUE(payload.compare(payload.size() - 2, 2, "0\n") == 0);
    payload.erase(payload.size() - 2);
    ASSERT_TRUE(runtime::writeFrame(fd, kServiceMagic,
                                    kServiceWireVersion, kFrameSweep,
                                    payload)
                    .ok());
    ASSERT_TRUE(readFrame(&rec));
    ASSERT_EQ(rec.type, kFrameAck);
    ASSERT_TRUE(readFrame(&rec));
    ASSERT_EQ(rec.type, kFrameReport);
    SweepReply reply;
    ASSERT_TRUE(decodeSweepReply(rec.payload, &reply));
    EXPECT_TRUE(reply.deadline_expired);
    ::close(fd);
    server.stop();
}

TEST(ServiceEndToEnd, TraceSliceCarriesTheRequestsSpans)
{
    telemetry::resetTracingForTesting();
    telemetry::setTracingEnabled(true);

    ServerOptions options;
    options.unix_path = scratchSocket("trace");
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    Client client;
    ASSERT_TRUE(client.connect(options.unix_path).ok());
    EXPECT_EQ(client.serverProtocol(), kProtocolVersion);
    SweepRequest req = expiredSweepRequest();
    req.trace_id = mintTraceId();
    SweepReply reply;
    ASSERT_TRUE(client.runSweep(req, &reply).ok());

    TraceReply slice;
    ASSERT_TRUE(client.trace(req.trace_id, &slice).ok());
    EXPECT_EQ(slice.trace_id, req.trace_id);
    ASSERT_FALSE(slice.events.empty());
    bool saw_admit = false;
    bool saw_execute = false;
    bool saw_sweep = false;
    for (const telemetry::SpanEvent &ev : slice.events) {
        EXPECT_EQ(ev.trace_id, req.trace_id) << ev.name;
        saw_admit |= ev.name == "service.admit";
        saw_execute |= ev.name == "service.execute";
        saw_sweep |= ev.name == "sweep";
    }
    EXPECT_TRUE(saw_admit);
    EXPECT_TRUE(saw_execute);
    EXPECT_TRUE(saw_sweep);

    // A trace id nobody used yields an empty (but well-formed) slice.
    TraceReply none;
    ASSERT_TRUE(client.trace(0x1, &none).ok());
    EXPECT_TRUE(none.events.empty());

    client.goodbye();
    server.stop();
    telemetry::setTracingEnabled(false);
    telemetry::resetTracingForTesting();
}

TEST(ServiceEndToEnd, CoalescedJoinersFetchTheirOwnTraceSlices)
{
    telemetry::resetTracingForTesting();
    telemetry::setTracingEnabled(true);
    telemetry::Counter &coalesced =
        telemetry::counter("apex.service.coalesced");
    const long long coalesced0 = coalesced.value();

    ServerOptions options;
    options.unix_path = scratchSocket("trace_coalesce");
    options.admission_hold_ms = 400.0;
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    constexpr int kClients = 3;
    std::vector<std::uint64_t> ids(kClients, 0);
    std::vector<bool> slice_ok(kClients, false);
    std::vector<bool> ids_match(kClients, false);
    std::vector<bool> nonempty(kClients, false);
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            Client client;
            if (!client.connect(options.unix_path).ok())
                return;
            SweepRequest req = expiredSweepRequest();
            req.trace_id = mintTraceId();
            ids[i] = req.trace_id;
            SweepReply reply;
            if (!client.runSweep(req, &reply).ok())
                return;
            TraceReply slice;
            if (!client.trace(req.trace_id, &slice).ok())
                return;
            slice_ok[i] = true;
            nonempty[i] = !slice.events.empty();
            bool all = slice.trace_id == req.trace_id;
            for (const telemetry::SpanEvent &ev : slice.events)
                all = all && ev.trace_id == req.trace_id;
            ids_match[i] = all;
            client.goodbye();
        });
    for (std::thread &t : threads)
        t.join();
    server.stop();

    // At least one request coalesced, and *every* requester — the
    // primary and each joiner — got a slice under its own trace id.
    EXPECT_GT(coalesced.value() - coalesced0, 0);
    for (int i = 0; i < kClients; ++i) {
        EXPECT_TRUE(slice_ok[i]) << "client " << i;
        EXPECT_TRUE(nonempty[i]) << "client " << i;
        EXPECT_TRUE(ids_match[i]) << "client " << i;
    }
    telemetry::setTracingEnabled(false);
    telemetry::resetTracingForTesting();
}

TEST(ServiceEndToEnd, StatuszRingSamplesDaemonVitals)
{
    ServerOptions options;
    options.unix_path = scratchSocket("statusz");
    options.statusz_interval_ms = 20.0;
    options.statusz_capacity = 4;
    Server server(options);
    ASSERT_TRUE(server.start().ok());

    Client client;
    ASSERT_TRUE(client.connect(options.unix_path).ok());
    SweepReply reply;
    ASSERT_TRUE(client.runSweep(expiredSweepRequest(), &reply).ok());

    // Let a few sampling ticks land, then read the ring.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    StatuszReply statusz;
    ASSERT_TRUE(client.statusz(0, &statusz).ok());
    EXPECT_DOUBLE_EQ(statusz.interval_ms, 20.0);
    ASSERT_GE(statusz.samples.size(), 2u);
    // The ring is bounded by statusz_capacity, not by uptime.
    EXPECT_LE(statusz.samples.size(), 4u);
    const StatusSnapshot &last = statusz.samples.back();
    EXPECT_GE(last.accepted, 1);
    EXPECT_GE(last.sweeps, 1);
    EXPECT_GE(last.sessions, 1);
    // Timestamps are monotone across the ring.
    for (std::size_t i = 1; i < statusz.samples.size(); ++i)
        EXPECT_GE(statusz.samples[i].ts_ms,
                  statusz.samples[i - 1].ts_ms);

    // max_samples trims from the oldest end.
    StatuszReply trimmed;
    ASSERT_TRUE(client.statusz(1, &trimmed).ok());
    ASSERT_EQ(trimmed.samples.size(), 1u);
    EXPECT_GE(trimmed.samples[0].ts_ms, statusz.samples[0].ts_ms);

    client.goodbye();
    server.stop();
}

} // namespace
} // namespace apex::service
