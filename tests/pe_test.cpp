#include <gtest/gtest.h>

#include <random>

#include "ir/builder.hpp"
#include "merging/merge.hpp"
#include "model/tech.hpp"
#include "pe/baseline.hpp"
#include "pe/functional.hpp"
#include "pe/spec.hpp"
#include "pe/verilog.hpp"
#include "pe/verilog_tb.hpp"

namespace apex::pe {
namespace {

using ir::GraphBuilder;
using ir::Op;

PeSpec
macPeSpec()
{
    GraphBuilder b;
    b.add(b.mul(b.input(), b.constant(0)), b.input());
    std::vector<int> map;
    auto dp = merging::datapathFromPattern(b.take(), &map);
    return makePeSpec(std::move(dp), "pe_mac");
}

TEST(PeSpecTest, MacSpecLayout) {
    const PeSpec spec = macPeSpec();
    EXPECT_EQ(spec.word_inputs.size(), 2u);
    EXPECT_EQ(spec.const_regs.size(), 1u);
    EXPECT_EQ(spec.word_outputs.size(), 1u);
    EXPECT_TRUE(spec.bit_outputs.empty());
    EXPECT_TRUE(spec.muxes.empty()) << "single-pattern PE needs no mux";
    EXPECT_TRUE(spec.multi_op_blocks.empty());
    // Config: one 16-bit constant only.
    EXPECT_EQ(spec.configBits(), 16);
}

TEST(PeSpecTest, AreaIsPositiveAndOrdered) {
    const auto &tech = model::defaultTech();
    const PeSpec mac = macPeSpec();
    const PeSpec base = baselinePe();
    EXPECT_GT(mac.area(tech), 0.0);
    EXPECT_GT(base.area(tech), mac.area(tech))
        << "baseline PE must dwarf a single-MAC PE";
}

TEST(PeSpecTest, BaselineAreaNearPaperCalibration) {
    // Table 2 reports 988.81 um^2 for the baseline PE core; the cost
    // model is calibrated to land near that value.
    const double area = baselinePe().area(model::defaultTech());
    EXPECT_GT(area, 850.0);
    EXPECT_LT(area, 1150.0);
}

TEST(PeFunctionalTest, MacComputesMultiplyAdd) {
    const PeSpec spec = macPeSpec();
    PeConfig cfg = defaultConfig(spec);
    cfg.const_val[0] = 3;

    PeFunctionalModel model(spec);
    PeInputs in;
    in.word = {10, 5};
    PeOutputs out;
    ASSERT_TRUE(model.evaluate(cfg, in, &out));
    ASSERT_TRUE(out.has_word);
    EXPECT_EQ(out.word, 10u * 3u + 5u);
}

TEST(PeFunctionalTest, BaselineExecutesEveryAluOp) {
    const PeSpec spec = baselinePe();
    PeFunctionalModel model(spec);

    // Find the addsub block and compute 9 - 4 via opcode kSub with
    // operands from the data inputs (mux select 0 = data input, the
    // first source in sorted order is the input node since the
    // baseline builder creates inputs first).
    PeConfig cfg = defaultConfig(spec);
    for (int b : spec.dp.blockIds()) {
        if (!spec.dp.nodes[b].ops.count(Op::kSub))
            continue;
        cfg.block_op[b] = Op::kSub;
        // Route both ports to the data inputs.
        for (int p = 0; p < 2; ++p) {
            const int mux = spec.muxIndexOf(b, p);
            ASSERT_GE(mux, 0);
            const auto &sources = spec.muxes[mux].sources;
            for (std::size_t s = 0; s < sources.size(); ++s) {
                if (spec.dp.nodes[sources[s]].kind ==
                    merging::DpNodeKind::kInput) {
                    cfg.mux_sel[mux] = static_cast<int>(s);
                }
            }
        }
        // Select this block on the word output.
        for (std::size_t s = 0; s < spec.word_outputs.size(); ++s)
            if (spec.word_outputs[s] == b)
                cfg.word_out_sel = static_cast<int>(s);
    }
    PeInputs in;
    in.word = {9, 4};
    in.bit = {0, 0, 0};
    PeOutputs out;
    ASSERT_TRUE(model.evaluate(cfg, in, &out));
    EXPECT_EQ(out.word, 5u);
}

TEST(PeFunctionalTest, RejectsOpOutsideBlock) {
    const PeSpec spec = macPeSpec();
    PeConfig cfg = defaultConfig(spec);
    // Force an op the block does not implement.
    for (int b : spec.dp.blockIds())
        if (spec.dp.nodes[b].ops.count(Op::kMul))
            cfg.block_op[b] = Op::kXor;
    PeFunctionalModel model(spec);
    PeInputs in;
    in.word = {1, 2};
    PeOutputs out;
    EXPECT_FALSE(model.evaluate(cfg, in, &out));
}

TEST(PeFunctionalTest, ReducedWidthMasksValues) {
    const PeSpec spec = macPeSpec();
    PeConfig cfg = defaultConfig(spec);
    cfg.const_val[0] = 3;
    PeFunctionalModel model(spec, /*width=*/4);
    PeInputs in;
    in.word = {10, 5}; // 10*3+5 = 35 = 0b100011 -> 3 in 4 bits
    PeOutputs out;
    ASSERT_TRUE(model.evaluate(cfg, in, &out));
    EXPECT_EQ(out.word, 35u & 0xF);
}

TEST(BaselineTest, SubsetDropsUnusedHardware) {
    const auto &tech = model::defaultTech();
    const PeSpec full = baselinePe();
    const PeSpec subset = baselineSubsetPe(
        {Op::kAdd, Op::kMul}, "pe_addmul");
    EXPECT_LT(subset.area(tech), full.area(tech));
    EXPECT_EQ(subset.dp.blockIds().size(), 2u);
    EXPECT_TRUE(subset.bit_inputs.empty());
    EXPECT_FALSE(subset.has_register_file);
}

TEST(BaselineTest, OpsUsedByExtractsComputeOps) {
    GraphBuilder b;
    b.output(b.max(b.mul(b.input(), b.input()), b.constant(0)));
    const auto ops = opsUsedBy(b.graph());
    EXPECT_EQ(ops.size(), 2u);
    EXPECT_TRUE(ops.count(Op::kMul));
    EXPECT_TRUE(ops.count(Op::kMax));
}

TEST(BaselineTest, ValidatesAndDescribes) {
    const PeSpec spec = baselinePe();
    std::string error;
    EXPECT_TRUE(spec.dp.validate(&error)) << error;
    const std::string desc = describe(spec, model::defaultTech());
    EXPECT_NE(desc.find("pe_base"), std::string::npos);
    EXPECT_NE(desc.find("mul"), std::string::npos);
}

TEST(VerilogTest, EmitsWellFormedModule) {
    const std::string v = emitVerilog(baselinePe());
    EXPECT_NE(v.find("module pe_base"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    EXPECT_NE(v.find("input  wire [15:0] data0"), std::string::npos);
    EXPECT_NE(v.find("output wire [15:0] res"), std::string::npos);
    EXPECT_NE(v.find("cfg_mux0"), std::string::npos);
    EXPECT_NE(v.find("case (cfg_op"), std::string::npos);
    // Balanced begin/end pairs (crude syntax check).
    std::size_t begins = 0, ends = 0, pos = 0;
    while ((pos = v.find("begin", pos)) != std::string::npos) {
        ++begins;
        pos += 5;
    }
    pos = 0;
    while ((pos = v.find("end", pos)) != std::string::npos) {
        ++ends;
        pos += 3;
    }
    // every "endmodule"/"endcase" also contains "end".
    EXPECT_GE(ends, begins);
}

TEST(VerilogTest, PipelinedPeHasRegisters) {
    PeSpec spec = macPeSpec();
    spec.pipeline_stages = 2;
    const std::string v = emitVerilog(spec);
    EXPECT_NE(v.find("posedge clk"), std::string::npos);
    EXPECT_NE(v.find("res_q1"), std::string::npos);
}

TEST(TestbenchTest, EmitsSelfCheckingVectors) {
    const PeSpec spec = macPeSpec();
    PeConfig cfg = defaultConfig(spec);
    cfg.const_val[0] = 3;
    const std::string tb =
        emitTestbench(spec, cfg, {.vectors = 8, .seed = 42});
    EXPECT_NE(tb.find("module pe_mac_tb"), std::string::npos);
    EXPECT_NE(tb.find(".cfg_const0(16'd3)"), std::string::npos);
    EXPECT_NE(tb.find("TB PASS (8 vectors)"), std::string::npos);
    EXPECT_NE(tb.find("$fatal"), std::string::npos);
    // Expected values must match the functional model: find one
    // "expected N" and re-check it.
    const auto pos = tb.find("expected ");
    ASSERT_NE(pos, std::string::npos);
}

TEST(TestbenchTest, PipelinedTbWaitsForLatency) {
    PeSpec spec = macPeSpec();
    spec.pipeline_stages = 2;
    const std::string tb =
        emitTestbench(spec, defaultConfig(spec), {.vectors = 4});
    EXPECT_NE(tb.find("repeat (2) @(posedge clk)"),
              std::string::npos);
}

TEST(TestbenchTest, ExpectedValuesComeFromGoldenModel) {
    // Deterministic seed -> the first vector is reproducible; verify
    // the emitted expected value equals the functional model's.
    const PeSpec spec = macPeSpec();
    PeConfig cfg = defaultConfig(spec);
    cfg.const_val[0] = 5;

    std::mt19937 rng(0x7B);
    std::uniform_int_distribution<std::uint32_t> dist(0, 0xFFFF);
    PeInputs in;
    in.word = {dist(rng), dist(rng)};
    PeOutputs out;
    PeFunctionalModel model(spec);
    ASSERT_TRUE(model.evaluate(cfg, in, &out));

    const std::string tb = emitTestbench(spec, cfg, {.vectors = 1});
    EXPECT_NE(tb.find("expected " + std::to_string(out.word)),
              std::string::npos);
}

TEST(MergedPeTest, MergedSpecExecutesBothPatterns) {
    const auto &tech = model::defaultTech();
    GraphBuilder b1; // add(mul(x, c), y)
    b1.add(b1.mul(b1.input(), b1.constant(0)), b1.input());
    GraphBuilder b2; // sub(x, y)
    b2.sub(b2.input(), b2.input());

    const auto mm =
        merging::mergePatterns({b1.take(), b2.take()}, tech);
    const PeSpec spec = makePeSpec(mm.merged, "pe_merged");
    PeFunctionalModel model(spec);

    // Pattern 2 path: configure the addsub block as sub with inputs.
    PeConfig cfg = defaultConfig(spec);
    for (int b : spec.dp.blockIds())
        if (spec.dp.nodes[b].ops.count(Op::kSub))
            cfg.block_op[b] = Op::kSub;
    // Route every mux port of the sub block to an input node if
    // possible.
    for (std::size_t m = 0; m < spec.muxes.size(); ++m) {
        const auto &site = spec.muxes[m];
        if (!spec.dp.nodes[site.node].ops.count(Op::kSub))
            continue;
        for (std::size_t s = 0; s < site.sources.size(); ++s)
            if (spec.dp.nodes[site.sources[s]].kind ==
                merging::DpNodeKind::kInput)
                cfg.mux_sel[m] = static_cast<int>(s);
    }
    PeInputs in;
    in.word.assign(spec.word_inputs.size(), 0);
    if (in.word.size() >= 2) {
        in.word[0] = 9;
        in.word[1] = 2;
    }
    PeOutputs out;
    ASSERT_TRUE(model.evaluate(cfg, in, &out));
    // The add/sub block merged both patterns' adders; with sub
    // selected and inputs routed, output is a difference of two of
    // the inputs (exact operand order depends on merge) — both 7 and
    // 0xFFF9 (= -7) prove the sub path works on input data.
    EXPECT_TRUE(out.word == 7u || out.word == 0xFFF9u ||
                out.word == 0u)
        << "unexpected sub result " << out.word;
}

} // namespace
} // namespace apex::pe
