#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "apps/apps.hpp"
#include "ir/builder.hpp"
#include "ir/serialize.hpp"
#include "ir/signature.hpp"
#include "mining/isomorphism.hpp"
#include "mining/miner.hpp"
#include "mining/mis.hpp"

namespace apex::mining {
namespace {

using ir::Graph;
using ir::GraphBuilder;
using ir::NodeId;
using ir::Op;
using ir::Value;

/** The Fig. 3 convolution, chain-shaped exactly as in the paper:
 * ((((i0*w0 + i1*w1) + i2*w2) + i3*w3) + c). */
Graph
fig3Convolution()
{
    GraphBuilder b;
    Value acc = b.mul(b.input("i0"), b.constant(1, "w0"));
    acc = b.add(acc, b.mul(b.input("i1"), b.constant(3, "w1")));
    acc = b.add(acc, b.mul(b.input("i2"), b.constant(5, "w2")));
    acc = b.add(acc, b.mul(b.input("i3"), b.constant(7, "w3")));
    acc = b.add(acc, b.constant(7, "c"));
    b.output(acc, "out");
    return b.take();
}

Graph
mulPattern()
{
    GraphBuilder b;
    b.mul(b.input(), b.input());
    return b.take();
}

TEST(IsomorphismTest, FindsAllMulsInConvolution) {
    const Graph conv = fig3Convolution();
    const auto embs = findEmbeddings(mulPattern(), conv);
    EXPECT_EQ(embs.size(), 4u);
}

TEST(IsomorphismTest, PortLabelsRestrictMatches) {
    // Pattern: sub(input, mul(...)) must not match sub(mul(...), input).
    GraphBuilder bt;
    Value x = bt.input(), y = bt.input();
    bt.output(bt.sub(bt.mul(x, y), x));
    const Graph target = bt.take();

    GraphBuilder bp1;
    bp1.sub(bp1.mul(bp1.input(), bp1.input()), bp1.input());
    EXPECT_EQ(findEmbeddings(bp1.take(), target).size(), 1u);

    GraphBuilder bp2;
    bp2.sub(bp2.input(), bp2.mul(bp2.input(), bp2.input()));
    EXPECT_TRUE(findEmbeddings(bp2.take(), target).empty());
}

TEST(IsomorphismTest, SharedPlaceholderRequiresSharedProducer) {
    GraphBuilder bt;
    Value x = bt.input(), y = bt.input();
    bt.output(bt.mul(x, y)); // a * b with distinct inputs
    const Graph target = bt.take();

    // Square pattern: mul(v, v) with one shared placeholder.
    Graph square;
    const NodeId v = square.addNode(Op::kInput);
    square.addNode(Op::kMul, {v, v});
    EXPECT_TRUE(findEmbeddings(square, target).empty());

    GraphBuilder bt2;
    Value z = bt2.input();
    bt2.output(bt2.mul(z, z));
    EXPECT_EQ(findEmbeddings(square, bt2.take()).size(), 1u);
}

TEST(IsomorphismTest, InjectiveOnCoreNodes) {
    // Pattern add(add(., .), .) in a two-add chain matches once.
    GraphBuilder bt;
    Value a = bt.input(), b = bt.input(), c = bt.input();
    bt.output(bt.add(bt.add(a, b), c));
    const Graph target = bt.take();

    GraphBuilder bp;
    bp.add(bp.add(bp.input(), bp.input()), bp.input());
    const auto embs = findEmbeddings(bp.take(), target);
    ASSERT_EQ(embs.size(), 1u);
}

TEST(MinerTest, MinesFig3FrequentSubgraphs) {
    const Graph conv = fig3Convolution();
    FrequentSubgraphMiner miner({.min_support = 4,
                                 .max_pattern_nodes = 3});
    auto patterns = miner.mine(conv);
    ASSERT_FALSE(patterns.empty());

    // Fig. 3 reports three most frequent subgraphs with frequency 4:
    // mul, add, and mul->add.  Check all three appear with freq 4.
    int found = 0;
    for (const auto &p : patterns) {
        if (p.frequency != 4)
            continue;
        const auto hist = p.pattern.opHistogram();
        const int muls = hist.count(Op::kMul) ? hist.at(Op::kMul) : 0;
        const int adds = hist.count(Op::kAdd) ? hist.at(Op::kAdd) : 0;
        if ((muls == 1 && adds == 0) || (muls == 0 && adds == 1) ||
            (muls == 1 && adds == 1)) {
            ++found;
        }
    }
    EXPECT_GE(found, 3);
}

TEST(MinerTest, FrequenciesAreExact) {
    const Graph conv = fig3Convolution();
    FrequentSubgraphMiner miner({.min_support = 2,
                                 .max_pattern_nodes = 4});
    for (const auto &p : miner.mine(conv)) {
        // Re-verify: every reported occurrence really hosts an
        // embedding, and the count of distinct node sets matches.
        const auto embs = findEmbeddings(p.pattern, conv);
        std::set<std::vector<NodeId>> sets;
        std::vector<NodeId> core;
        for (NodeId id = 0; id < p.pattern.size(); ++id)
            if (!isPlaceholder(p.pattern, id))
                core.push_back(id);
        for (const auto &e : embs) {
            std::vector<NodeId> s;
            for (NodeId cid : core)
                s.push_back(e.map[cid]);
            std::sort(s.begin(), s.end());
            sets.insert(s);
        }
        EXPECT_EQ(p.frequency, static_cast<int>(sets.size()))
            << p.code;
    }
}

TEST(MinerTest, RespectsMaxPatternSize) {
    const Graph conv = fig3Convolution();
    FrequentSubgraphMiner miner({.min_support = 2,
                                 .max_pattern_nodes = 3});
    for (const auto &p : miner.mine(conv))
        EXPECT_LE(p.core_size, 3);
}

TEST(MinerTest, PatternsAreUnique) {
    const Graph conv = fig3Convolution();
    FrequentSubgraphMiner miner({.min_support = 2,
                                 .max_pattern_nodes = 4});
    std::set<std::string> codes;
    for (const auto &p : miner.mine(conv)) {
        EXPECT_EQ(p.code, ir::canonicalCode(p.pattern));
        EXPECT_TRUE(codes.insert(p.code).second)
            << "duplicate pattern " << p.code;
    }
}

TEST(MinerTest, MinesRealApplication) {
    const auto app = apps::gaussianBlur(2);
    FrequentSubgraphMiner miner({.min_support = 3,
                                 .max_pattern_nodes = 4});
    auto patterns = miner.mine(app.graph);
    rankPatterns(patterns);
    ASSERT_FALSE(patterns.empty());

    // The top-ranked pattern must have substantial non-overlapping
    // coverage and more than one node (a MAC-ish shape).
    EXPECT_GE(patterns.front().mis_size, 3);
    EXPECT_GE(patterns.front().core_size, 2);
    // Ranking is by MIS size, descending.
    for (std::size_t i = 1; i < patterns.size(); ++i)
        EXPECT_GE(patterns[i - 1].mis_size, patterns[i].mis_size);
}

TEST(MinerTest, MniSupportBoundsNodeSetCount) {
    // MNI is never larger than the distinct-node-set count, and for
    // the Fig. 3 convolution the two agree on the top patterns.
    const Graph conv = fig3Convolution();
    FrequentSubgraphMiner miner({.min_support = 2,
                                 .max_pattern_nodes = 3});
    for (const auto &p : miner.mine(conv)) {
        EXPECT_LE(p.mni_support,
                  static_cast<int>(p.occurrences.size()))
            << p.code;
        EXPECT_GE(p.mni_support, 1) << p.code;
    }
}

TEST(MinerTest, MniMetricPrunesHarder) {
    // Under MNI, overlapping-only patterns score lower; mining with
    // the MNI metric can only return a subset of the node-set-count
    // run at equal threshold.
    const Graph conv = fig3Convolution();
    MinerOptions node_sets{.min_support = 3, .max_pattern_nodes = 3};
    MinerOptions mni = node_sets;
    mni.metric = SupportMetric::kMni;

    const auto a = FrequentSubgraphMiner(node_sets).mine(conv);
    const auto b = FrequentSubgraphMiner(mni).mine(conv);
    EXPECT_LE(b.size(), a.size());
    std::set<std::string> codes;
    for (const auto &p : a)
        codes.insert(p.code);
    for (const auto &p : b)
        EXPECT_TRUE(codes.count(p.code))
            << "MNI-frequent pattern missing from node-set run";
}

TEST(MinerTest, MniCountsDistinctImagesNotEmbeddings) {
    // Star: one add consumed by three muls.  Pattern mul(add, x) has
    // three embeddings but the add position maps to ONE target node,
    // so MNI == 1 while node-set count == 3.
    GraphBuilder b;
    Value x = b.input(), y = b.input();
    Value s = b.add(x, y);
    b.output(b.mul(s, b.input()));
    b.output(b.mul(s, b.input()));
    b.output(b.mul(s, b.input()));
    const Graph g = b.take();

    FrequentSubgraphMiner miner({.min_support = 1,
                                 .max_pattern_nodes = 2});
    bool found = false;
    for (const auto &p : miner.mine(g)) {
        const auto hist = p.pattern.opHistogram();
        if (p.core_size == 2 && hist.count(Op::kAdd) &&
            hist.count(Op::kMul)) {
            EXPECT_EQ(p.mni_support, 1);
            EXPECT_EQ(static_cast<int>(p.occurrences.size()), 3);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(MinerTest, ConstantMiningCanBeDisabled) {
    const Graph conv = fig3Convolution();
    MinerOptions opt{.min_support = 2, .max_pattern_nodes = 3};
    opt.mine_constants = false;
    for (const auto &p : FrequentSubgraphMiner(opt).mine(conv)) {
        EXPECT_TRUE(p.pattern.nodesWithOp(Op::kConst).empty())
            << p.code;
    }
}

TEST(MinerTest, MinedPatternsSerializeRoundTrip) {
    const Graph conv = fig3Convolution();
    FrequentSubgraphMiner miner({.min_support = 2,
                                 .max_pattern_nodes = 3});
    for (const auto &p : miner.mine(conv)) {
        const auto parsed =
            ir::deserialize(ir::serialize(p.pattern));
        ASSERT_TRUE(parsed.has_value()) << p.code;
        EXPECT_EQ(ir::canonicalCode(*parsed), p.code);
    }
}

TEST(MinerTest, EmptyGraphYieldsNoPatterns) {
    FrequentSubgraphMiner miner({.min_support = 1});
    EXPECT_TRUE(miner.mine(Graph{}).empty());
}

TEST(MinerTest, SupportThresholdFilters) {
    const Graph conv = fig3Convolution();
    // Nothing in the 9-op convolution occurs 100 times.
    FrequentSubgraphMiner miner({.min_support = 100});
    EXPECT_TRUE(miner.mine(conv).empty());
}

TEST(MisTest, Fig4OverlapExample) {
    // Four occurrences in a chain where consecutive ones overlap:
    // MIS must pick the two ends (size 2), as in Fig. 4.
    std::vector<std::vector<NodeId>> occ = {
        {0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {6, 7, 8}};
    const auto mis = maximalIndependentSet(occ);
    EXPECT_EQ(mis.size, 2);
}

TEST(MisTest, DisjointOccurrencesAllChosen) {
    std::vector<std::vector<NodeId>> occ = {
        {0, 1}, {2, 3}, {4, 5}, {6, 7}};
    EXPECT_EQ(maximalIndependentSet(occ).size, 4);
}

TEST(MisTest, ChosenSetIsIndependentAndMaximal) {
    std::vector<std::vector<NodeId>> occ = {
        {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}};
    const auto mis = maximalIndependentSet(occ);
    const auto adj = overlapGraph(occ);

    std::set<int> chosen(mis.chosen.begin(), mis.chosen.end());
    for (int c : mis.chosen)
        for (int nb : adj[c])
            EXPECT_FALSE(chosen.count(nb))
                << "chosen set must be independent";
    // Maximality: every unchosen vertex has a chosen neighbour.
    for (int v = 0; v < static_cast<int>(occ.size()); ++v) {
        if (chosen.count(v))
            continue;
        bool blocked = false;
        for (int nb : adj[v])
            blocked |= chosen.count(nb) > 0;
        EXPECT_TRUE(blocked) << "vertex " << v
                             << " could extend the set";
    }
}

TEST(MisTest, ExactBeatsOrMatchesGreedyOnStar) {
    // Star graph: centre overlaps all leaves; exact MIS = #leaves.
    std::vector<std::vector<NodeId>> occ;
    occ.push_back({0, 1, 2, 3, 4, 5});
    for (NodeId leaf = 0; leaf < 6; ++leaf)
        occ.push_back({leaf, 100 + leaf});
    EXPECT_EQ(maximalIndependentSet(occ).size, 6);
}

TEST(MisTest, EmptyInput) {
    EXPECT_EQ(maximalIndependentSet({}).size, 0);
}

// Property sweep over several applications: every mined pattern's
// occurrences must be real embeddings and MIS <= frequency.
class MinerPropertyTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(MinerPropertyTest, OccurrencesAreEmbeddingsAndMisBounded) {
    const std::string name = GetParam();
    apps::AppInfo app = name == "gaussian" ? apps::gaussianBlur(2)
                        : name == "harris" ? apps::harrisCorner(1)
                                           : apps::mobilenetLayer(2);
    FrequentSubgraphMiner miner({.min_support = 3,
                                 .max_pattern_nodes = 4});
    auto patterns = miner.mine(app.graph);
    rankPatterns(patterns);
    ASSERT_FALSE(patterns.empty()) << name;
    for (const auto &p : patterns) {
        EXPECT_GE(p.frequency, 3);
        EXPECT_GE(p.mis_size, 1);
        EXPECT_LE(p.mis_size, p.frequency);
        EXPECT_TRUE(p.pattern.validate());
        for (const auto &occ : p.occurrences)
            EXPECT_EQ(occ.size(), static_cast<std::size_t>(p.core_size));
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, MinerPropertyTest,
                         ::testing::Values("gaussian", "harris",
                                           "mobilenet"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

} // namespace
} // namespace apex::mining
