#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ir/builder.hpp"
#include "ir/dot.hpp"
#include "ir/graph.hpp"
#include "ir/interpreter.hpp"
#include "ir/op.hpp"
#include "ir/signature.hpp"
#include "ir/streaming.hpp"
#include "ir/validate.hpp"

namespace apex::ir {
namespace {

TEST(OpTest, MetadataConsistency) {
    for (int i = 0; i < kNumOps; ++i) {
        const Op op = static_cast<Op>(i);
        const OpInfo &info = opInfo(op);
        EXPECT_FALSE(info.name.empty());
        EXPECT_EQ(opFromName(info.name), op);
        EXPECT_NE(info.isCompute, info.isStructural)
            << "op " << info.name
            << " must be exactly one of compute/structural";
    }
}

TEST(OpTest, ArithmeticSemantics) {
    EXPECT_EQ(evalOp(Op::kAdd, 7, 9, 0, 0), 16u);
    EXPECT_EQ(evalOp(Op::kAdd, 0xFFFF, 1, 0, 0), 0u) << "16-bit wrap";
    EXPECT_EQ(evalOp(Op::kSub, 3, 5, 0, 0), 0xFFFEu);
    EXPECT_EQ(evalOp(Op::kMul, 300, 300, 0, 0), (300 * 300) & 0xFFFF);
    EXPECT_EQ(evalOp(Op::kAbs, 0xFFFF, 0, 0, 0), 1u) << "|-1| == 1";
    EXPECT_EQ(evalOp(Op::kAbs, 5, 0, 0, 0), 5u);
    EXPECT_EQ(evalOp(Op::kMin, 0xFFFF, 1, 0, 0), 0xFFFFu)
        << "signed min(-1, 1) == -1";
    EXPECT_EQ(evalOp(Op::kMax, 0xFFFF, 1, 0, 0), 1u);
}

TEST(OpTest, ShiftSemantics) {
    EXPECT_EQ(evalOp(Op::kShl, 1, 4, 0, 0), 16u);
    EXPECT_EQ(evalOp(Op::kLshr, 0x8000, 15, 0, 0), 1u);
    EXPECT_EQ(evalOp(Op::kAshr, 0x8000, 15, 0, 0), 0xFFFFu)
        << "arithmetic shift must replicate the sign bit";
}

TEST(OpTest, CompareSemantics) {
    EXPECT_EQ(evalOp(Op::kSlt, 0xFFFF, 0, 0, 0), 1u) << "-1 < 0";
    EXPECT_EQ(evalOp(Op::kUlt, 0xFFFF, 0, 0, 0), 0u);
    EXPECT_EQ(evalOp(Op::kEq, 42, 42, 0, 0), 1u);
    EXPECT_EQ(evalOp(Op::kNeq, 42, 42, 0, 0), 0u);
    EXPECT_EQ(evalOp(Op::kSge, 5, 5, 0, 0), 1u);
}

TEST(OpTest, SelectAndLut) {
    EXPECT_EQ(evalOp(Op::kSel, 1, 111, 222, 0), 111u);
    EXPECT_EQ(evalOp(Op::kSel, 0, 111, 222, 0), 222u);
    // LUT table 0b11101000 == majority(a, b, c).
    EXPECT_EQ(evalOp(Op::kLut, 1, 1, 0, 0xE8), 1u);
    EXPECT_EQ(evalOp(Op::kLut, 1, 0, 0, 0xE8), 0u);
    EXPECT_EQ(evalOp(Op::kLut, 1, 0, 1, 0xE8), 1u);
}

TEST(OpTest, ReducedWidthEvaluation) {
    // 4-bit semantics: 15 + 1 wraps to 0; -1 == 15.
    EXPECT_EQ(evalOp(Op::kAdd, 15, 1, 0, 0, 4), 0u);
    EXPECT_EQ(evalOp(Op::kSlt, 15, 0, 0, 0, 4), 1u);
    EXPECT_EQ(evalOp(Op::kAshr, 8, 3, 0, 0, 4), 15u);
}

TEST(GraphTest, BuildAndValidate) {
    GraphBuilder b;
    Value x = b.input("x");
    Value y = b.input("y");
    b.output(b.add(b.mul(x, y), b.constant(1)), "out");
    Graph g = b.take();

    std::string error;
    EXPECT_TRUE(g.validate(&error)) << error;
    EXPECT_EQ(g.size(), 6u);
    EXPECT_EQ(g.computeNodes().size(), 2u);
    EXPECT_EQ(g.opHistogram()[Op::kMul], 1);
}

TEST(GraphTest, ValidateRejectsArityMismatch) {
    Graph g;
    NodeId a = g.addNode(Op::kInput);
    g.addNode(Op::kAdd, {a}); // add requires two operands
    std::string error;
    EXPECT_FALSE(g.validate(&error));
    EXPECT_NE(error.find("operands"), std::string::npos);
}

TEST(GraphTest, ValidateRejectsTypeMismatch) {
    Graph g;
    NodeId a = g.addNode(Op::kInput);
    NodeId b = g.addNode(Op::kInput);
    NodeId cmp = g.addNode(Op::kEq, {a, b});
    g.addNode(Op::kAdd, {cmp, a}); // bit into word port
    EXPECT_FALSE(g.validate());
}

TEST(GraphTest, ValidateRejectsCycle) {
    Graph g;
    NodeId a = g.addNode(Op::kInput);
    NodeId n1 = g.addNode(Op::kAdd, {a, a});
    NodeId n2 = g.addNode(Op::kAdd, {n1, a});
    g.setOperand(n1, 1, n2);
    EXPECT_FALSE(g.validate());
}

TEST(GraphTest, TopoOrderRespectsDependencies) {
    GraphBuilder b;
    Value x = b.input();
    Value s = b.add(x, b.constant(1));
    b.output(b.mul(s, s));
    Graph g = b.take();

    const auto order = g.topoOrder();
    ASSERT_EQ(order.size(), g.size());
    std::vector<int> pos(g.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = static_cast<int>(i);
    for (const Edge &e : g.edges())
        EXPECT_LT(pos[e.src], pos[e.dst]);
}

TEST(GraphTest, InducedSubgraphAddsInputs) {
    GraphBuilder b;
    Value x = b.input("x");
    Value y = b.input("y");
    Value m = b.mul(x, y);
    Value a = b.add(m, b.constant(3));
    b.output(a);
    Graph g = b.take();

    // Keep only the add node: its operands become fresh inputs.
    Graph sub = g.inducedSubgraph({a.id()});
    EXPECT_TRUE(sub.validate());
    EXPECT_EQ(sub.size(), 3u); // two inputs + add
    EXPECT_EQ(sub.nodesWithOp(Op::kAdd).size(), 1u);
    EXPECT_EQ(sub.nodesWithOp(Op::kInput).size(), 2u);
}

TEST(GraphTest, InducedSubgraphSharesExternalProducer) {
    GraphBuilder b;
    Value x = b.input("x");
    Value sq = b.mul(x, x);
    b.output(sq);
    Graph g = b.take();

    Graph sub = g.inducedSubgraph({sq.id()});
    // Both mul operands come from the same external node -> one input.
    EXPECT_EQ(sub.nodesWithOp(Op::kInput).size(), 1u);
}

TEST(InterpreterTest, EvaluatesExpression) {
    GraphBuilder b;
    Value x = b.input("x");
    Value y = b.input("y");
    b.output(b.add(b.mul(x, y), b.constant(10)));
    Graph g = b.take();

    Interpreter interp;
    const auto outs = interp.evalByOrder(g, {6, 7});
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0], 52u);
}

TEST(InterpreterTest, RegistersAreTransparent) {
    GraphBuilder b;
    Value x = b.input();
    b.output(b.add(b.reg(b.reg(x)), b.constant(1)));
    Graph g = b.take();
    Interpreter interp;
    EXPECT_EQ(interp.evalByOrder(g, {41})[0], 42u);
}

TEST(InterpreterTest, SelectPath) {
    GraphBuilder b;
    Value x = b.input();
    Value cond = b.sgt(x, b.constant(10));
    b.output(b.select(cond, b.constant(1), b.constant(0)));
    Graph g = b.take();
    Interpreter interp;
    EXPECT_EQ(interp.evalByOrder(g, {20})[0], 1u);
    EXPECT_EQ(interp.evalByOrder(g, {5})[0], 0u);
}

TEST(SignatureTest, IsomorphicGraphsShareCode) {
    // Same structure built in different node orders.
    GraphBuilder b1;
    Value x1 = b1.input(), y1 = b1.input();
    b1.output(b1.add(b1.mul(x1, y1), y1));
    Graph g1 = b1.take();

    GraphBuilder b2;
    Value y2 = b2.input(), x2 = b2.input();
    b2.output(b2.add(b2.mul(x2, y2), y2));
    Graph g2 = b2.take();

    EXPECT_EQ(canonicalCode(g1), canonicalCode(g2));
    EXPECT_TRUE(isomorphic(g1, g2));
}

TEST(SignatureTest, OperandOrderMatters) {
    GraphBuilder b1;
    Value x1 = b1.input(), y1 = b1.input();
    b1.output(b1.sub(b1.mul(x1, y1), y1));
    Graph g1 = b1.take();

    GraphBuilder b2;
    Value x2 = b2.input(), y2 = b2.input();
    b2.output(b2.sub(y2, b2.mul(x2, y2)));
    Graph g2 = b2.take();

    EXPECT_NE(canonicalCode(g1), canonicalCode(g2))
        << "sub(a, b) and sub(b, a) are different patterns";
}

TEST(SignatureTest, DifferentOpsDiffer) {
    GraphBuilder b1;
    b1.output(b1.add(b1.input(), b1.input()));
    GraphBuilder b2;
    b2.output(b2.mul(b2.input(), b2.input()));
    EXPECT_FALSE(isomorphic(b1.graph(), b2.graph()));
}

TEST(SignatureTest, ConstValuesDoNotDistinguish) {
    GraphBuilder b1;
    b1.output(b1.mul(b1.input(), b1.constant(3)));
    GraphBuilder b2;
    b2.output(b2.mul(b2.input(), b2.constant(99)));
    EXPECT_TRUE(isomorphic(b1.graph(), b2.graph()))
        << "weights are wildcards for pattern identity";
}

TEST(SignatureTest, LutTableDistinguishes) {
    GraphBuilder b1;
    Value a1 = b1.inputBit(), c1 = b1.inputBit(), d1 = b1.inputBit();
    b1.outputBit(b1.lut(0xE8, a1, c1, d1));
    GraphBuilder b2;
    Value a2 = b2.inputBit(), c2 = b2.inputBit(), d2 = b2.inputBit();
    b2.outputBit(b2.lut(0x96, a2, c2, d2));
    EXPECT_FALSE(isomorphic(b1.graph(), b2.graph()));
}

TEST(StreamingTest, RegisterDelaysByOneCycle) {
    GraphBuilder b;
    Value x = b.input("x");
    b.output(b.reg(x), "y");
    Graph g = b.take();

    StreamingInterpreter s;
    const auto out = s.run(g, {{10, 20, 30, 40}}, 4);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], (std::vector<std::uint64_t>{0, 10, 20, 30}));
}

TEST(StreamingTest, RegFileDelaysByDepth) {
    Graph g;
    NodeId in = g.addNode(Op::kInput);
    NodeId rf = g.addNode(Op::kRegFile, {in}, 3);
    g.addNode(Op::kOutput, {rf});

    StreamingInterpreter s;
    const auto out = s.run(g, {{1, 2, 3, 4, 5}}, 5);
    EXPECT_EQ(out[0], (std::vector<std::uint64_t>{0, 0, 0, 1, 2}));
}

TEST(StreamingTest, WindowSumCombinesAdjacentSamples) {
    // y(t) = x(t) + x(t-1): a 2-tap moving sum.
    GraphBuilder b;
    Value x = b.input("x");
    b.output(b.add(x, b.reg(x)), "y");
    Graph g = b.take();

    StreamingInterpreter s;
    const auto out = s.run(g, {{5, 7, 11, 13}}, 4);
    EXPECT_EQ(out[0], (std::vector<std::uint64_t>{5, 12, 18, 24}));
}

TEST(StreamingTest, SteadyStateMatchesCombinationalInterpreter) {
    // On a constant input stream, the streaming semantics converge
    // to the combinational interpreter's value.
    const Graph g = [] {
        GraphBuilder b;
        Value x = b.input("x");
        Value m = b.mem(x, "lb");
        b.output(b.add(b.mul(m, b.constant(3)), b.reg(x)));
        return b.take();
    }();

    StreamingInterpreter s;
    const auto streams = s.run(g, {{9, 9, 9, 9, 9, 9}}, 6);
    const Interpreter interp;
    const auto fixed = interp.evalByOrder(g, {9});
    EXPECT_EQ(streams[0].back(), fixed[0]);
}

TEST(DotTest, ContainsNodesAndEdges) {
    GraphBuilder b;
    b.output(b.add(b.input("x"), b.constant(7)));
    const std::string dot = toDot(b.graph(), "t");
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("add"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

// Property sweep: evalOp must agree between full width and the masked
// projection for width-uniform ops (the rewrite-rule validation
// argument from DESIGN.md).
class WidthUniformityTest : public ::testing::TestWithParam<Op> {};

TEST_P(WidthUniformityTest, MaskCommutesWithEval) {
    const Op op = GetParam();
    const int w = 6;
    const std::uint64_t mask = (1u << w) - 1;
    for (std::uint64_t a = 0; a <= mask; a += 5) {
        for (std::uint64_t c = 0; c <= mask; c += 7) {
            const auto narrow = evalOp(op, a, c, 0, 0, w);
            EXPECT_LE(narrow, opResultType(op) == ValueType::kWord
                                  ? mask
                                  : 1u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBinaryOps, WidthUniformityTest,
    ::testing::Values(Op::kAdd, Op::kSub, Op::kMul, Op::kMin, Op::kMax,
                      Op::kShl, Op::kLshr, Op::kAshr, Op::kAnd, Op::kOr,
                      Op::kXor, Op::kEq, Op::kUlt, Op::kSlt, Op::kSge),
    [](const auto &info) {
        return std::string(opName(info.param));
    });

// --- ir::validate ------------------------------------------------------

TEST(ValidateTest, AcceptsWellFormedGraphs) {
    GraphBuilder b;
    Value x = b.input("x");
    b.output(b.add(b.mul(x, b.constant(7)), b.constant(3)), "y");
    const Graph g = b.take();
    EXPECT_TRUE(validate(g).ok());
}

TEST(ValidateTest, RejectsDanglingOperand) {
    Graph g;
    const NodeId in = g.addNode(Op::kInput);
    const NodeId add = g.addNode(Op::kAdd, {in, in});
    g.setOperand(add, 1, static_cast<NodeId>(500));
    const Status s = validate(g);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kInvalidIr);
}

TEST(ValidateTest, RejectsArityMismatch) {
    Graph g;
    const NodeId in = g.addNode(Op::kInput);
    g.addNode(Op::kAdd, {in}); // add needs two operands
    EXPECT_FALSE(validate(g).ok());
}

TEST(ValidateTest, AllowsRegisterBrokenFeedbackLoop) {
    // Accumulator idiom: add feeds a register that feeds the add.
    Graph g;
    const NodeId in = g.addNode(Op::kInput);
    const NodeId add = g.addNode(Op::kAdd, {in, in});
    const NodeId reg = g.addNode(Op::kReg, {add});
    g.setOperand(add, 1, reg);
    EXPECT_TRUE(validate(g).ok());
    // ...but the serialized (def-order) form must reject it.
    EXPECT_FALSE(
        validate(g, {.require_def_order = true}).ok());
}

TEST(ValidateTest, RejectsCombinationalCycle) {
    Graph g;
    const NodeId in = g.addNode(Op::kInput);
    const NodeId a = g.addNode(Op::kAdd, {in, in});
    const NodeId b = g.addNode(Op::kAdd, {a, in});
    g.setOperand(a, 1, b); // combinational a <-> b loop
    const Status s = validate(g);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("cycle"), std::string::npos);
}

// --- Typed IR errors (former asserts) ----------------------------------

TEST(IrErrorTest, BuilderRejectsInvalidValue) {
    GraphBuilder b;
    Value good = b.input("x");
    Value bad; // default-constructed
    EXPECT_THROW(b.add(good, bad), IrError);
    EXPECT_THROW(b.output(bad), IrError);
}

TEST(IrErrorTest, MacTreeRejectsMismatchedInputs) {
    GraphBuilder b;
    std::vector<Value> ins = {b.input("a")};
    std::vector<Value> weights = {b.constant(1), b.constant(2)};
    EXPECT_THROW(b.macTree(ins, weights), IrError);
}

TEST(IrErrorTest, UnknownOpNameThrows) {
    EXPECT_THROW(opFromName("frobnicate"), IrError);
    try {
        opFromName("frobnicate");
    } catch (const IrError &e) {
        EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
    }
}

TEST(IrErrorTest, EvalOpRejectsBadWidth) {
    EXPECT_THROW(evalOp(Op::kAdd, 1, 2, 0, 0, 0), IrError);
    EXPECT_THROW(evalOp(Op::kAdd, 1, 2, 0, 0, 65), IrError);
    EXPECT_EQ(evalOp(Op::kAdd, 1, 2, 0, 0, 16), 3u);
}

TEST(IrErrorTest, SetOperandRejectsOutOfRangeNode) {
    Graph g;
    g.addNode(Op::kInput);
    EXPECT_THROW(g.setOperand(static_cast<NodeId>(42), 0, 0),
                 IrError);
}

} // namespace
} // namespace apex::ir
