#include <gtest/gtest.h>

#include <algorithm>

#include <random>

#include "apps/apps.hpp"
#include "ir/builder.hpp"
#include "ir/interpreter.hpp"
#include "mapper/rewrite.hpp"
#include "mapper/report.hpp"
#include "mapper/select.hpp"
#include "merging/merge.hpp"
#include "model/tech.hpp"
#include "pe/baseline.hpp"

namespace apex::mapper {
namespace {

using ir::Graph;
using ir::GraphBuilder;
using ir::Op;
using ir::Value;

Graph
macPattern()
{
    GraphBuilder b;
    b.add(b.mul(b.input(), b.constant(0)), b.input());
    return b.take();
}

TEST(RewriteTest, SynthesizesSingleAddOnBaseline) {
    const pe::PeSpec spec = pe::baselinePe();
    RewriteRuleSynthesizer synth(spec);

    GraphBuilder b;
    b.add(b.input(), b.input());
    const auto rule = synth.synthesize(b.take());
    ASSERT_TRUE(rule.has_value());
    EXPECT_EQ(rule->size, 1);
    EXPECT_EQ(rule->placeholders.size(), 2u);
    EXPECT_TRUE(rule->const_bindings.empty());
    EXPECT_TRUE(rule->word_output);
}

TEST(RewriteTest, SynthesizesConstVariant) {
    const pe::PeSpec spec = pe::baselinePe();
    RewriteRuleSynthesizer synth(spec);

    GraphBuilder b;
    b.mul(b.input(), b.constant(0));
    const auto rule = synth.synthesize(b.take());
    ASSERT_TRUE(rule.has_value());
    EXPECT_EQ(rule->const_bindings.size(), 1u);
}

TEST(RewriteTest, RejectsUnsupportedPattern) {
    // PE with only an adder cannot execute a multiply.
    const pe::PeSpec spec =
        pe::baselineSubsetPe({Op::kAdd}, "pe_add_only");
    RewriteRuleSynthesizer synth(spec);
    GraphBuilder b;
    b.mul(b.input(), b.input());
    EXPECT_FALSE(synth.synthesize(b.take()).has_value());
}

TEST(RewriteTest, RejectsTooManyOpsOfOneClass) {
    // Baseline has one adder; a two-add chain needs two.
    const pe::PeSpec spec = pe::baselinePe();
    RewriteRuleSynthesizer synth(spec);
    GraphBuilder b;
    b.add(b.add(b.input(), b.input()), b.input());
    EXPECT_FALSE(synth.synthesize(b.take()).has_value());
}

TEST(RewriteTest, MergedPeExecutesComplexPattern) {
    const auto &tech = model::defaultTech();
    const pe::PeSpec base = pe::baselineSubsetPe(
        {Op::kAdd, Op::kMul}, "pe_seed");
    std::vector<int> seed_map;
    const auto mm = merging::mergeIntoDatapath(
        base.dp, {macPattern()}, tech, &seed_map);
    const pe::PeSpec spec = pe::makePeSpec(mm.merged, "pe_mac");

    RewriteRuleSynthesizer synth(spec);
    const auto rule = synth.synthesize(macPattern());
    ASSERT_TRUE(rule.has_value());
    EXPECT_EQ(rule->size, 2) << "mac covers two compute ops";
}

TEST(RewriteTest, LibraryCoversAllOpsLargestFirst) {
    const pe::PeSpec spec = pe::baselinePe();
    RewriteRuleSynthesizer synth(spec);
    const auto rules = synth.synthesizeLibrary({});
    ASSERT_FALSE(rules.empty());
    // Every op of the baseline gets at least one rule.
    std::set<Op> covered;
    for (const auto &r : rules) {
        for (ir::NodeId id = 0; id < r.pattern.size(); ++id)
            if (ir::opIsCompute(r.pattern.op(id)))
                covered.insert(r.pattern.op(id));
        EXPECT_TRUE(validateRule(spec, r));
    }
    for (Op op : {Op::kAdd, Op::kSub, Op::kMul, Op::kMin, Op::kMax,
                  Op::kShl, Op::kLshr, Op::kAshr, Op::kSlt, Op::kSel,
                  Op::kLut}) {
        EXPECT_TRUE(covered.count(op)) << ir::opName(op);
    }
    for (std::size_t i = 1; i < rules.size(); ++i)
        EXPECT_GE(rules[i - 1].size, rules[i].size);
}

TEST(RewriteTest, ValidationCatchesCorruptedRule) {
    const pe::PeSpec spec = pe::baselinePe();
    RewriteRuleSynthesizer synth(spec);
    GraphBuilder b;
    b.sub(b.input(), b.input());
    auto rule = synth.synthesize(b.take());
    ASSERT_TRUE(rule.has_value());
    // Corrupt: swap the two input port assignments (sub is not
    // commutative, so the rule must now fail validation).
    std::swap(rule->input_ports[0], rule->input_ports[1]);
    EXPECT_FALSE(validateRule(spec, *rule));
}

/** Map with the baseline PE library and check functional equality
 * against the IR interpreter on random inputs. */
void
expectMappingCorrect(const Graph &app, const pe::PeSpec &spec,
                     const std::vector<Graph> &complex_patterns,
                     int min_pe_count = 1)
{
    RewriteRuleSynthesizer synth(spec);
    InstructionSelector selector(
        synth.synthesizeLibrary(complex_patterns));
    const SelectionResult sel = selector.map(app);
    ASSERT_TRUE(sel.success) << sel.error;
    EXPECT_GE(sel.peCount(), min_pe_count);

    std::mt19937 rng(99);
    std::uniform_int_distribution<std::uint32_t> dist(0, 255);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<std::uint64_t> inputs;
        for (ir::NodeId id = 0; id < app.size(); ++id) {
            if (app.op(id) == Op::kInput)
                inputs.push_back(dist(rng));
            else if (app.op(id) == Op::kInputBit)
                inputs.push_back(dist(rng) & 1);
        }
        const ir::Interpreter interp;
        const auto want = interp.evalByOrder(app, inputs);
        const auto got = executeMapped(sel.mapped, selector.rules(),
                                       spec, inputs);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(got[i], want[i]) << "output " << i;
    }
}

TEST(SelectTest, MapsGaussianOnBaseline) {
    const auto app = apps::gaussianBlur(1);
    expectMappingCorrect(app.graph, pe::baselinePe(), {}, 10);
}

TEST(SelectTest, MapsCameraOnBaseline) {
    const auto app = apps::cameraPipeline(1);
    expectMappingCorrect(app.graph, pe::baselinePe(), {}, 30);
}

TEST(SelectTest, ComplexRuleReducesPeCount) {
    const auto &tech = model::defaultTech();
    const auto app = apps::gaussianBlur(1);

    // Baseline mapping: one PE per compute op (9 mul + 8 add + 1 shr
    // = 18, minus const-folded multiplies still 18 sites).
    const pe::PeSpec base = pe::baselinePe();
    RewriteRuleSynthesizer base_synth(base);
    InstructionSelector base_sel(base_synth.synthesizeLibrary({}));
    const auto base_result = base_sel.map(app.graph);
    ASSERT_TRUE(base_result.success) << base_result.error;

    // Specialized: merge the MAC pattern into a restricted baseline.
    const pe::PeSpec seed = pe::baselineSubsetPe(
        pe::opsUsedBy(app.graph), "pe_gauss_seed");
    const auto mm = merging::mergeIntoDatapath(
        seed.dp, {macPattern()}, tech, nullptr);
    const pe::PeSpec spec = pe::makePeSpec(mm.merged, "pe_gauss");

    RewriteRuleSynthesizer synth(spec);
    InstructionSelector selector(
        synth.synthesizeLibrary({macPattern()}));
    const auto result = selector.map(app.graph);
    ASSERT_TRUE(result.success) << result.error;
    EXPECT_LT(result.peCount(), base_result.peCount())
        << "MAC-specialized PE must reduce the PE count";
}

TEST(SelectTest, FailsOnUnsupportedOp) {
    const pe::PeSpec spec =
        pe::baselineSubsetPe({Op::kAdd}, "pe_add_only");
    RewriteRuleSynthesizer synth(spec);
    InstructionSelector selector(synth.synthesizeLibrary({}));
    GraphBuilder b;
    b.output(b.mul(b.input(), b.input()));
    const auto result = selector.map(b.take());
    EXPECT_FALSE(result.success);
    EXPECT_NE(result.error.find("mul"), std::string::npos);
}

TEST(SelectTest, InternalFanoutBlocksComplexRule) {
    // app: m = mul(x, c); y = add(m, z); w = sub(m, z).
    // The mul's value is needed by both add and sub, so a mac rule
    // anchored at the add must NOT swallow the mul.
    const auto &tech = model::defaultTech();
    GraphBuilder b;
    Value x = b.input(), z = b.input();
    Value m = b.mul(x, b.constant(5));
    b.output(b.add(m, z));
    b.output(b.sub(m, z));
    const Graph app = b.take();

    const pe::PeSpec seed = pe::baselineSubsetPe(
        {Op::kAdd, Op::kSub, Op::kMul}, "pe_seed");
    const auto mm =
        merging::mergeIntoDatapath(seed.dp, {macPattern()}, tech);
    const pe::PeSpec spec = pe::makePeSpec(mm.merged, "pe_mac");
    RewriteRuleSynthesizer synth(spec);
    InstructionSelector selector(
        synth.synthesizeLibrary({macPattern()}));
    const auto result = selector.map(app);
    ASSERT_TRUE(result.success) << result.error;
    // mul, add and sub each need their own PE: 3 PEs.
    EXPECT_EQ(result.peCount(), 3);

    const ir::Interpreter interp;
    const auto want = interp.evalByOrder(app, {7, 9});
    const auto got =
        executeMapped(result.mapped, selector.rules(), spec, {7, 9});
    EXPECT_EQ(got, want);
}

TEST(SelectTest, MappedGraphCountsResources) {
    const auto app = apps::gaussianBlur(1);
    const pe::PeSpec spec = pe::baselinePe();
    RewriteRuleSynthesizer synth(spec);
    InstructionSelector selector(synth.synthesizeLibrary({}));
    const auto result = selector.map(app.graph);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.mapped.count(MappedKind::kMem), 2);
    EXPECT_EQ(result.mapped.count(MappedKind::kInput), 1);
    EXPECT_EQ(result.mapped.count(MappedKind::kOutput), 1);
    EXPECT_EQ(result.mapped.count(MappedKind::kReg), 6);
}

// Property sweep: mapping correctness across apps on the baseline PE.
class MappingEquivalenceTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(MappingEquivalenceTest, MappedEqualsInterpreter) {
    const std::string name = GetParam();
    apps::AppInfo app =
        name == "gaussian"    ? apps::gaussianBlur(1)
        : name == "unsharp"   ? apps::unsharp(1)
        : name == "laplacian" ? apps::laplacianPyramid(1)
        : name == "mobilenet" ? apps::mobilenetLayer(2)
        : name == "stereo"    ? apps::stereo(2)
                              : apps::harrisCorner(1);
    expectMappingCorrect(app.graph, pe::baselinePe(), {});
}

INSTANTIATE_TEST_SUITE_P(Apps, MappingEquivalenceTest,
                         ::testing::Values("gaussian", "unsharp",
                                           "laplacian", "mobilenet",
                                           "stereo", "harris"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(MinCostTest, DpBeatsGreedyOnAdversarialChain) {
    // Chain d = lshr(c, x3); c = add(b, x2); b = mul(x0, x1).
    // Library: pair(lshr(add)), triple(lshr(add(mul))), singles.
    // Greedy anchored at d prefers... both tilings of size >= 2 are
    // possible; construct so greedy takes the pair and strands the
    // mul as a single (3 PEs), while DP finds triple + nothing
    // (|cover| = 1 PE for the whole chain).
    const auto &tech = model::defaultTech();
    GraphBuilder bt; // triple pattern
    bt.lshr(bt.add(bt.mul(bt.input(), bt.input()), bt.input()),
            bt.input());
    const Graph triple = bt.take();
    GraphBuilder bp; // pair pattern
    bp.lshr(bp.add(bp.input(), bp.input()), bp.input());
    const Graph pair = bp.take();

    // PE hosting both patterns.
    const pe::PeSpec seed = pe::baselineSubsetPe(
        {Op::kMul, Op::kAdd, Op::kLshr}, "pe_seed");
    const auto mm = merging::mergeIntoDatapath(
        seed.dp, {triple, pair}, tech, nullptr);
    const pe::PeSpec spec = pe::makePeSpec(mm.merged, "pe_chain");

    RewriteRuleSynthesizer synth(spec);
    auto rules = synth.synthesizeLibrary({pair, triple});
    // Force the pair ahead of the triple to make greedy provably
    // suboptimal (greedy takes rules in order within equal size; put
    // pair first among multi-op rules by resorting).
    std::stable_sort(rules.begin(), rules.end(),
                     [](const RewriteRule &a, const RewriteRule &b) {
                         if ((a.size >= 2) != (b.size >= 2))
                             return a.size >= 2;
                         if (a.size >= 2 && b.size >= 2)
                             return a.size < b.size; // pair first
                         return a.size > b.size;
                     });

    GraphBuilder ba; // the application chain
    auto m = ba.mul(ba.input(), ba.input());
    auto c = ba.add(m, ba.input());
    ba.output(ba.lshr(c, ba.input()));
    const Graph app = ba.take();

    InstructionSelector greedy(rules,
                               SelectionPolicy::kGreedyLargestFirst);
    InstructionSelector dp(rules, SelectionPolicy::kMinCost);
    const auto rg = greedy.map(app);
    const auto rd = dp.map(app);
    ASSERT_TRUE(rg.success) << rg.error;
    ASSERT_TRUE(rd.success) << rd.error;
    EXPECT_EQ(rg.peCount(), 2) << "greedy: pair + stranded mul";
    EXPECT_EQ(rd.peCount(), 1) << "DP finds the whole-chain rule";

    // Both are functionally correct.
    const ir::Interpreter interp;
    const std::vector<std::uint64_t> in = {5, 6, 7, 2};
    const auto want = interp.evalByOrder(app, in);
    EXPECT_EQ(executeMapped(rg.mapped, rules, spec, in), want);
    EXPECT_EQ(executeMapped(rd.mapped, rules, spec, in), want);
}

TEST(MinCostTest, NeverWorseThanGreedyOnApps) {
    const pe::PeSpec spec = pe::baselinePe();
    RewriteRuleSynthesizer synth(spec);
    const auto rules = synth.synthesizeLibrary({});
    for (const auto &app :
         {apps::gaussianBlur(1), apps::unsharp(1),
          apps::laplacianPyramid(1)}) {
        InstructionSelector greedy(
            rules, SelectionPolicy::kGreedyLargestFirst);
        InstructionSelector dp(rules, SelectionPolicy::kMinCost);
        const auto rg = greedy.map(app.graph);
        const auto rd = dp.map(app.graph);
        ASSERT_TRUE(rg.success) << app.name << ": " << rg.error;
        ASSERT_TRUE(rd.success) << app.name << ": " << rd.error;
        EXPECT_LE(rd.peCount(), rg.peCount()) << app.name;

        // Functional equivalence of the DP mapping.
        const ir::Interpreter interp;
        std::vector<std::uint64_t> in;
        for (ir::NodeId id = 0; id < app.graph.size(); ++id)
            if (app.graph.op(id) == Op::kInput)
                in.push_back(37 + 11 * in.size());
        EXPECT_EQ(executeMapped(rd.mapped, rules, spec, in),
                  interp.evalByOrder(app.graph, in))
            << app.name;
    }
}

TEST(MinCostTest, FailsGracefullyOnUnsupportedOp) {
    const pe::PeSpec spec =
        pe::baselineSubsetPe({Op::kAdd}, "pe_add_only");
    RewriteRuleSynthesizer synth(spec);
    InstructionSelector dp(synth.synthesizeLibrary({}),
                           SelectionPolicy::kMinCost);
    GraphBuilder b;
    b.output(b.mul(b.input(), b.input()));
    const auto r = dp.map(b.take());
    EXPECT_FALSE(r.success);
    EXPECT_NE(r.error.find("mul"), std::string::npos);
}

TEST(ReportTest, StatsMatchMapping) {
    const auto app = apps::gaussianBlur(1);
    const pe::PeSpec spec = pe::baselinePe();
    RewriteRuleSynthesizer synth(spec);
    InstructionSelector selector(synth.synthesizeLibrary({}));
    const auto result = selector.map(app.graph);
    ASSERT_TRUE(result.success);

    const auto stats = mappingStats(result, selector.rules());
    EXPECT_EQ(stats.pe_count, result.peCount());
    // All 18 compute ops of a 1-lane gaussian are covered.
    EXPECT_EQ(stats.covered_ops,
              static_cast<int>(app.graph.computeNodes().size()));
    EXPECT_GE(stats.ops_per_pe, 1.0);
    // All multiplies bind their weight constants.
    EXPECT_GE(stats.consts_absorbed, 9);
    EXPECT_GE(stats.distinct_rules, 2);

    const std::string report =
        mappingReport(result, selector.rules());
    EXPECT_NE(report.find("mapping report"), std::string::npos);
    EXPECT_NE(report.find("ops covered"), std::string::npos);
    EXPECT_NE(report.find("per-rule uses"), std::string::npos);
    EXPECT_NE(report.find("mul"), std::string::npos);
}

TEST(ReportTest, MergedRulesRaiseOpsPerPe) {
    const auto &tech = model::defaultTech();
    const auto app = apps::gaussianBlur(1);

    const pe::PeSpec base = pe::baselinePe();
    RewriteRuleSynthesizer base_synth(base);
    InstructionSelector base_sel(base_synth.synthesizeLibrary({}));
    const auto r0 = base_sel.map(app.graph);
    ASSERT_TRUE(r0.success);
    const auto s0 = mappingStats(r0, base_sel.rules());

    const pe::PeSpec seed = pe::baselineSubsetPe(
        pe::opsUsedBy(app.graph), "seed");
    const auto mm = merging::mergeIntoDatapath(
        seed.dp, {macPattern()}, tech, nullptr);
    const pe::PeSpec spec = pe::makePeSpec(mm.merged, "pe_mac");
    RewriteRuleSynthesizer synth(spec);
    InstructionSelector selector(
        synth.synthesizeLibrary({macPattern()}));
    const auto r1 = selector.map(app.graph);
    ASSERT_TRUE(r1.success);
    const auto s1 = mappingStats(r1, selector.rules());

    EXPECT_GT(s1.ops_per_pe, s0.ops_per_pe);
    EXPECT_GT(s1.multi_op_pes, 0);
    EXPECT_GE(s1.max_rule_size, 2);
}

/** Random layered DAG over the word-level op set. */
Graph
randomDag(std::mt19937 &rng, int depth, int width)
{
    GraphBuilder b;
    std::uniform_int_distribution<std::uint32_t> val(0, 0xFFFF);
    const Op binary_ops[] = {Op::kAdd, Op::kSub, Op::kMul, Op::kMin,
                             Op::kMax, Op::kShl, Op::kLshr,
                             Op::kAshr, Op::kAnd, Op::kOr, Op::kXor};
    const Op unary_ops[] = {Op::kAbs, Op::kNot};

    std::vector<Value> pool;
    for (int i = 0; i < width; ++i)
        pool.push_back(b.input());
    for (int i = 0; i < 2; ++i)
        pool.push_back(b.constant(val(rng)));

    auto pick = [&]() { return pool[rng() % pool.size()]; };
    for (int layer = 0; layer < depth; ++layer) {
        const int nodes = 1 + static_cast<int>(rng() % width);
        for (int k = 0; k < nodes; ++k) {
            Value v;
            switch (rng() % 8) {
              case 0:
                v = (rng() % 2) ? b.abs(pick())
                                : b.bitwiseNot(pick());
                (void)unary_ops; // documented alternatives
                break;
              case 1: {
                // Compare feeding a select keeps bit types legal.
                Value c = b.slt(pick(), pick());
                v = b.select(c, pick(), pick());
                break;
              }
              default: {
                const Op op =
                    binary_ops[rng() % std::size(binary_ops)];
                Value a = pick(), c = pick();
                switch (op) {
                  case Op::kAdd: v = b.add(a, c); break;
                  case Op::kSub: v = b.sub(a, c); break;
                  case Op::kMul: v = b.mul(a, c); break;
                  case Op::kMin: v = b.min(a, c); break;
                  case Op::kMax: v = b.max(a, c); break;
                  case Op::kShl: v = b.shl(a, c); break;
                  case Op::kLshr: v = b.lshr(a, c); break;
                  case Op::kAshr: v = b.ashr(a, c); break;
                  case Op::kAnd: v = b.bitwiseAnd(a, c); break;
                  case Op::kOr: v = b.bitwiseOr(a, c); break;
                  default: v = b.bitwiseXor(a, c); break;
                }
                break;
              }
            }
            pool.push_back(v);
        }
    }
    b.output(pool.back());
    b.output(pool[pool.size() / 2].valid() ? pool[pool.size() / 2]
                                           : pool.back());
    return b.take();
}

TEST(MappingFuzzTest, RandomDagsMapAndExecuteCorrectly) {
    const pe::PeSpec spec = pe::baselinePe();
    RewriteRuleSynthesizer synth(spec);
    InstructionSelector selector(synth.synthesizeLibrary({}));
    const ir::Interpreter interp;

    std::mt19937 rng(0xF00D);
    std::uniform_int_distribution<std::uint32_t> val(0, 0xFFFF);
    int mapped_count = 0;
    for (int trial = 0; trial < 25; ++trial) {
        const Graph g = randomDag(rng, 3 + trial % 4, 3);
        std::string verr;
        ASSERT_TRUE(g.validate(&verr)) << verr;

        const auto sel = selector.map(g);
        // Outputs fed directly by constants are unmappable by
        // design (constants live in PE const regs); skip those rare
        // DAGs, everything else must map.
        if (!sel.success)
            continue;
        ++mapped_count;

        std::vector<std::uint64_t> inputs;
        for (ir::NodeId id = 0; id < g.size(); ++id)
            if (g.op(id) == Op::kInput)
                inputs.push_back(val(rng));
        const auto want = interp.evalByOrder(g, inputs);
        const auto got = executeMapped(sel.mapped, selector.rules(),
                                       spec, inputs);
        ASSERT_EQ(got, want) << "fuzz trial " << trial;
    }
    EXPECT_GE(mapped_count, 20) << "too many unmappable fuzz DAGs";
}

} // namespace
} // namespace apex::mapper
