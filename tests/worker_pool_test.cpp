/**
 * Supervised worker-pool tests: the wire frame decoder over partial
 * and corrupt byte streams, crash/hang/garbage fault recovery with
 * deterministic retry accounting, poison-task quarantine, and
 * cooperative cancellation.  The sweep-level process-isolation
 * contract (byte-identical reports, durable quarantine) is covered in
 * durability_test.cpp, which owns the sweep fixtures.
 */
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/fault.hpp"
#include "runtime/record.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/wire.hpp"
#include "runtime/worker_pool.hpp"

namespace apex::runtime {
namespace {

// --- Wire frame decoder ------------------------------------------------

TEST(WireDecoder, ReassemblesFramesFromSingleByteChunks)
{
    const std::string stream =
        encodeFrame(kWireMagic, kWireVersion, "resp", "first") +
        encodeFrame(kWireMagic, kWireVersion, "hb", "") +
        encodeFrame(kWireMagic, kWireVersion, "resp",
                    std::string("bin\0\n payload", 13));
    FrameDecoder decoder(kWireMagic, kWireVersion);
    std::vector<FramedRecord> got;
    for (char c : stream) {
        decoder.feed(&c, 1);
        FramedRecord rec;
        while (decoder.next(&rec) == DecodeResult::kFrame)
            got.push_back(rec);
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].type, "resp");
    EXPECT_EQ(got[0].payload, "first");
    EXPECT_EQ(got[1].type, "hb");
    EXPECT_EQ(got[1].payload, "");
    EXPECT_EQ(got[2].payload, std::string("bin\0\n payload", 13));
    EXPECT_FALSE(decoder.corrupt());
}

TEST(WireDecoder, PartialFrameIsNeedMoreNotCorrupt)
{
    const std::string frame =
        encodeFrame(kWireMagic, kWireVersion, "resp", "payload");
    FrameDecoder decoder(kWireMagic, kWireVersion);
    decoder.feed(frame.data(), frame.size() - 3);
    FramedRecord rec;
    EXPECT_EQ(decoder.next(&rec), DecodeResult::kNeedMore);
    EXPECT_FALSE(decoder.corrupt());
    decoder.feed(frame.data() + frame.size() - 3, 3);
    EXPECT_EQ(decoder.next(&rec), DecodeResult::kFrame);
    EXPECT_EQ(rec.payload, "payload");
}

TEST(WireDecoder, GarbageLatchesCorrupt)
{
    FrameDecoder decoder(kWireMagic, kWireVersion);
    const std::string garbage = "not a frame at all\n";
    decoder.feed(garbage.data(), garbage.size());
    FramedRecord rec;
    EXPECT_EQ(decoder.next(&rec), DecodeResult::kCorrupt);
    EXPECT_TRUE(decoder.corrupt());
    // A pipe has no resync point: once garbled, always garbled —
    // even if well-formed bytes arrive later.
    const std::string frame =
        encodeFrame(kWireMagic, kWireVersion, "resp", "late");
    decoder.feed(frame.data(), frame.size());
    EXPECT_EQ(decoder.next(&rec), DecodeResult::kCorrupt);
}

TEST(WireDecoder, ChecksumMismatchIsCorrupt)
{
    std::string frame =
        encodeFrame(kWireMagic, kWireVersion, "resp", "payload");
    frame[frame.size() - 3] ^= 0x20; // flip a payload byte
    FrameDecoder decoder(kWireMagic, kWireVersion);
    decoder.feed(frame.data(), frame.size());
    FramedRecord rec;
    EXPECT_EQ(decoder.next(&rec), DecodeResult::kCorrupt);
}

TEST(WireDecoder, OversizedLengthFieldIsCorruptNotAllocation)
{
    // A length field beyond the bound must poison the stream up
    // front; honoring it would buffer unbounded memory waiting for a
    // payload that never arrives.
    FrameDecoder decoder(kWireMagic, kWireVersion);
    const std::string header =
        std::string(kWireMagic) + " 1 resp sum 0000000000000000 len " +
        std::to_string(decoder.maxPayload() + 1) + "\n";
    decoder.feed(header.data(), header.size());
    FramedRecord rec;
    EXPECT_EQ(decoder.next(&rec), DecodeResult::kCorrupt);
    EXPECT_NE(decoder.corruptReason().find("exceeds"),
              std::string::npos)
        << decoder.corruptReason();
}

TEST(WireDecoder, CustomPayloadLimitIsEnforced)
{
    FrameDecoder decoder(kWireMagic, kWireVersion, 16);
    EXPECT_EQ(decoder.maxPayload(), 16u);
    const std::string big(32, 'x');
    const std::string frame =
        encodeFrame(kWireMagic, kWireVersion, "resp", big);
    decoder.feed(frame.data(), frame.size());
    FramedRecord rec;
    EXPECT_EQ(decoder.next(&rec), DecodeResult::kCorrupt);
    EXPECT_NE(decoder.corruptReason().find("exceeds"),
              std::string::npos);
    // A payload at the limit still decodes.
    FrameDecoder ok(kWireMagic, kWireVersion, 16);
    const std::string fits =
        encodeFrame(kWireMagic, kWireVersion, "resp",
                    std::string(16, 'y'));
    ok.feed(fits.data(), fits.size());
    EXPECT_EQ(ok.next(&rec), DecodeResult::kFrame);
}

TEST(WireDecoder, VersionMismatchNamesBothVersions)
{
    FrameDecoder decoder(kWireMagic, kWireVersion);
    const std::string frame =
        encodeFrame(kWireMagic, kWireVersion + 1, "resp", "x");
    decoder.feed(frame.data(), frame.size());
    FramedRecord rec;
    EXPECT_EQ(decoder.next(&rec), DecodeResult::kCorrupt);
    EXPECT_NE(decoder.corruptReason().find("version mismatch"),
              std::string::npos)
        << decoder.corruptReason();
}

TEST(WireDecoder, CorruptReasonEmptyWhileHealthy)
{
    FrameDecoder decoder(kWireMagic, kWireVersion);
    EXPECT_TRUE(decoder.corruptReason().empty());
    const std::string frame =
        encodeFrame(kWireMagic, kWireVersion, "resp", "fine");
    decoder.feed(frame.data(), frame.size());
    FramedRecord rec;
    EXPECT_EQ(decoder.next(&rec), DecodeResult::kFrame);
    EXPECT_TRUE(decoder.corruptReason().empty());
}

TEST(WireDecoder, DrainFdFeedsUntilEof)
{
    int fds[2] = {-1, -1};
    ASSERT_EQ(pipe(fds), 0);
    const std::string stream =
        encodeFrame(kWireMagic, kWireVersion, "resp", "one") +
        encodeFrame(kWireMagic, kWireVersion, "resp", "two");
    ASSERT_EQ(write(fds[1], stream.data(), stream.size()),
              static_cast<ssize_t>(stream.size()));
    close(fds[1]);
    FrameDecoder decoder(kWireMagic, kWireVersion);
    // A short read ends the drain early (on a blocking fd, looping
    // again could block forever); the EOF shows up on the next call.
    DrainResult drained;
    do {
        drained = drainFd(fds[0], decoder);
    } while (drained == DrainResult::kOpen);
    EXPECT_EQ(drained, DrainResult::kEof);
    close(fds[0]);
    FramedRecord rec;
    ASSERT_EQ(decoder.next(&rec), DecodeResult::kFrame);
    EXPECT_EQ(rec.payload, "one");
    ASSERT_EQ(decoder.next(&rec), DecodeResult::kFrame);
    EXPECT_EQ(rec.payload, "two");
    EXPECT_EQ(decoder.next(&rec), DecodeResult::kNeedMore);
}

TEST(WireDecoder, SingleReadModeDecodesAnExactBufferMultiple)
{
    // Pending bytes that are an exact multiple of the drain buffer
    // (16384) and already hold a complete frame: until-EAGAIN on a
    // blocking fd would read() again after the full read and block
    // on a quiet peer forever.  kSingleRead hands control back after
    // each read so the caller decodes what it holds.  A regression
    // here shows up as this test hanging.
    int fds[2] = {-1, -1};
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::string payload(16000, 'p');
    std::string frame =
        encodeFrame(kWireMagic, kWireVersion, "resp", payload);
    // Pad the payload until the encoded frame is exactly 16384
    // bytes (two passes: the first may change the len field's digit
    // count).
    for (int i = 0; i < 3 && frame.size() != 16384u; ++i) {
        payload.resize(payload.size() + (16384u - frame.size()));
        frame = encodeFrame(kWireMagic, kWireVersion, "resp",
                            payload);
    }
    ASSERT_EQ(frame.size(), 16384u);
    ASSERT_EQ(write(fds[1], frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));

    FrameDecoder decoder(kWireMagic, kWireVersion);
    FramedRecord rec;
    DecodeResult dr = decoder.next(&rec);
    for (int reads = 0;
         dr == DecodeResult::kNeedMore && reads < 64; ++reads) {
        ASSERT_EQ(drainFd(fds[0], decoder, DrainMode::kSingleRead),
                  DrainResult::kOpen);
        dr = decoder.next(&rec);
    }
    EXPECT_EQ(dr, DecodeResult::kFrame);
    EXPECT_EQ(rec.payload, payload);
    close(fds[0]);
    close(fds[1]);
}

TEST(WireWrite, StallTimeoutFailsInsteadOfBlockingForever)
{
    // A non-blocking socket (the service session shape) whose peer
    // never reads: writeAll must give up after the stall bound with
    // a Status, not park the writing thread in poll() forever.
    int fds[2] = {-1, -1};
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_EQ(fcntl(fds[1], F_SETFL,
                    fcntl(fds[1], F_GETFL, 0) | O_NONBLOCK),
              0);
    const int small = 4096;
    (void)setsockopt(fds[1], SOL_SOCKET, SO_SNDBUF, &small,
                     sizeof small);
    const std::string big(1u << 20, 'x');
    const Status s = writeAll(fds[1], big, /*stall_timeout_ms=*/50);
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.message().find("stalled"), std::string::npos)
        << s.toString();
    close(fds[0]);
    close(fds[1]);
}

TEST(WireDecoder, DeathCauseNamesRoundTrip)
{
    for (WorkerDeathCause c :
         {WorkerDeathCause::kCrash, WorkerDeathCause::kOom,
          WorkerDeathCause::kHang}) {
        EXPECT_EQ(workerDeathCauseFromName(workerDeathCauseName(c)),
                  c);
    }
    EXPECT_EQ(workerDeathCauseFromName("martians"),
              WorkerDeathCause::kNone);
}

// --- Worker pool -------------------------------------------------------

WorkerPoolOptions
fastOptions(int workers)
{
    WorkerPoolOptions opts;
    opts.workers = workers;
    opts.heartbeat_ms = 5.0;
    opts.backoff_base_ms = 1.0;
    opts.backoff_cap_ms = 20.0;
    opts.shutdown_grace_ms = 500.0;
    return opts;
}

TEST(WorkerPool, EchoesInTaskOrderAcrossWorkers)
{
    WorkerPool pool(
        [](const std::string &task) { return "echo:" + task; },
        fastOptions(3));
    std::vector<std::string> tasks;
    for (int i = 0; i < 12; ++i)
        tasks.push_back("task-" + std::to_string(i));
    const auto outcomes = pool.run(tasks);
    ASSERT_EQ(outcomes.size(), tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_EQ(outcomes[i].fate, TaskFate::kDone) << i;
        EXPECT_EQ(outcomes[i].attempts, 1) << i;
        EXPECT_EQ(outcomes[i].response, "echo:" + tasks[i]) << i;
    }
    EXPECT_EQ(pool.stats().forks, 3);
    EXPECT_EQ(pool.stats().restarts, 0);
    EXPECT_EQ(pool.stats().quarantined, 0);
}

TEST(WorkerPool, WorkersAreReusedAcrossRuns)
{
    WorkerPool pool(
        [](const std::string &task) { return task + "!"; },
        fastOptions(2));
    EXPECT_EQ(pool.run({"a", "b"})[1].response, "b!");
    EXPECT_EQ(pool.run({"c"})[0].response, "c!");
    EXPECT_EQ(pool.stats().forks, 2); // no respawns between runs
}

TEST(WorkerPool, ThrowingHandlerIsACrashAndQuarantines)
{
    WorkerPoolOptions opts = fastOptions(2);
    opts.task_retries = 1;
    WorkerPool pool(
        [](const std::string &task) -> std::string {
            if (task == "poison")
                throw std::runtime_error("boom");
            return "ok:" + task;
        },
        opts);
    const auto outcomes = pool.run({"a", "poison", "b"});
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].fate, TaskFate::kDone);
    EXPECT_EQ(outcomes[2].fate, TaskFate::kDone);
    EXPECT_EQ(outcomes[1].fate, TaskFate::kQuarantined);
    EXPECT_EQ(outcomes[1].cause, WorkerDeathCause::kCrash);
    EXPECT_EQ(outcomes[1].attempts, 2); // 1 try + 1 retry
    EXPECT_EQ(pool.stats().quarantined, 1);
    EXPECT_EQ(pool.stats().retries, 1);
    // Restart count is schedule-dependent here (0..2): if the live
    // worker drained the queue before the deaths were reaped, the
    // pool never needed a respawn.  The deterministic accounting is
    // pinned by the single-worker fault-injection tests below.
}

TEST(WorkerPool, InjectedKillIsRetriedTransparently)
{
    // Dispatch ordinal 2 kills its worker; the task is re-queued at
    // the front and the retry succeeds on the respawned worker.
    FaultScope fault(FaultStage::kWorkerKill, 2);
    WorkerPoolOptions opts = fastOptions(1);
    WorkerPool pool(
        [](const std::string &task) { return "ok:" + task; }, opts);
    const auto outcomes = pool.run({"a", "b", "c", "d"});
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        EXPECT_EQ(outcomes[i].fate, TaskFate::kDone) << i;
    EXPECT_EQ(outcomes[1].attempts, 2);
    EXPECT_EQ(outcomes[0].attempts, 1);
    EXPECT_EQ(pool.stats().restarts, 1);
    EXPECT_EQ(pool.stats().retries, 1);
    EXPECT_EQ(pool.stats().quarantined, 0);
}

TEST(WorkerPool, PoisonTaskIsQuarantinedAfterAllRetries)
{
    // Front-requeueing keeps the retried task on consecutive dispatch
    // ordinals, so a 3-wide kill window poisons exactly one task.
    FaultScope fault(FaultStage::kWorkerKill, 2, 3);
    WorkerPoolOptions opts = fastOptions(1);
    opts.task_retries = 2;
    WorkerPool pool(
        [](const std::string &task) { return "ok:" + task; }, opts);
    const auto outcomes = pool.run({"a", "b", "c"});
    EXPECT_EQ(outcomes[0].fate, TaskFate::kDone);
    EXPECT_EQ(outcomes[2].fate, TaskFate::kDone);
    EXPECT_EQ(outcomes[1].fate, TaskFate::kQuarantined);
    EXPECT_EQ(outcomes[1].cause, WorkerDeathCause::kCrash);
    EXPECT_EQ(outcomes[1].attempts, 3);
    EXPECT_EQ(pool.stats().quarantined, 1);
    EXPECT_EQ(pool.stats().retries, 2);
    EXPECT_EQ(pool.stats().restarts, 3);
}

TEST(WorkerPool, HangingWorkerIsKilledAndClassified)
{
    FaultScope fault(FaultStage::kWorkerHang, 1);
    WorkerPoolOptions opts = fastOptions(1);
    opts.task_retries = 0;
    opts.liveness_timeout_ms = 100.0;
    WorkerPool pool(
        [](const std::string &task) { return "ok:" + task; }, opts);
    const auto outcomes = pool.run({"frozen"});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].fate, TaskFate::kQuarantined);
    EXPECT_EQ(outcomes[0].cause, WorkerDeathCause::kHang);
    EXPECT_EQ(outcomes[0].attempts, 1);
}

TEST(WorkerPool, GarbledResultPipeIsACrashAndRetried)
{
    FaultScope fault(FaultStage::kWorkerGarbage, 1);
    WorkerPoolOptions opts = fastOptions(1);
    opts.task_retries = 1;
    WorkerPool pool(
        [](const std::string &task) { return "ok:" + task; }, opts);
    const auto outcomes = pool.run({"a", "b"});
    EXPECT_EQ(outcomes[0].fate, TaskFate::kDone);
    EXPECT_EQ(outcomes[0].attempts, 2);
    EXPECT_EQ(outcomes[1].fate, TaskFate::kDone);
    EXPECT_EQ(pool.stats().restarts, 1);
    EXPECT_EQ(pool.stats().retries, 1);
}

TEST(WorkerPool, CancelStopsDispatchAndReturnsPromptly)
{
    std::atomic<bool> cancel{false};
    WorkerPoolOptions opts = fastOptions(1);
    opts.cancel = &cancel;
    WorkerPool pool(
        [](const std::string &task) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(30));
            return "ok:" + task;
        },
        opts);
    std::thread trigger([&cancel] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        cancel.store(true);
    });
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes =
        pool.run(std::vector<std::string>(50, "slow"));
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    trigger.join();
    ASSERT_EQ(outcomes.size(), 50u);
    int done = 0, cancelled = 0;
    for (const auto &o : outcomes) {
        if (o.fate == TaskFate::kDone) {
            ++done;
            EXPECT_EQ(o.response, "ok:slow");
        } else {
            EXPECT_EQ(o.fate, TaskFate::kCancelled);
            ++cancelled;
        }
    }
    EXPECT_GT(cancelled, 0);
    // 50 tasks x 30ms is 1.5s of work; the cancelled run must not
    // have come anywhere near finishing it.
    EXPECT_LT(wall_ms, 1200.0);
    EXPECT_EQ(done + cancelled, 50);
}

TEST(WorkerPool, TraceIdCrossesTheForkBoundary)
{
    // The handler runs in a forked child; the trace id must survive
    // the pipe protocol so daemon-side worker spans can be tied back
    // to the request that dispatched them (DESIGN.md Sec. 7i).
    WorkerPoolOptions opts = fastOptions(2);
    opts.trace_id = 42;
    WorkerPool pool(
        [](const std::string &task) {
            return task + ":" +
                   std::to_string(telemetry::currentTraceId());
        },
        opts);
    const auto outcomes = pool.run({"a", "b", "c"});
    ASSERT_EQ(outcomes.size(), 3u);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_EQ(outcomes[i].fate, TaskFate::kDone) << i;
        EXPECT_EQ(outcomes[i].response.substr(2), "42") << i;
    }
}

TEST(WorkerPool, UnsetTraceIdReachesChildrenAsZero)
{
    WorkerPool pool(
        [](const std::string &) {
            return std::to_string(telemetry::currentTraceId());
        },
        fastOptions(1));
    const auto outcomes = pool.run({"x"});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].response, "0");
}

} // namespace
} // namespace apex::runtime
