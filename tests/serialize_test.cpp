#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "ir/builder.hpp"
#include "ir/interpreter.hpp"
#include "ir/serialize.hpp"
#include "ir/signature.hpp"

namespace apex::ir {
namespace {

TEST(SerializeTest, RoundTripSimpleGraph) {
    GraphBuilder b;
    Value x = b.input("x");
    Value w = b.constant(7, "w");
    b.output(b.add(b.mul(x, w), b.constant(3)), "y");
    const Graph g = b.take();

    const std::string text = serialize(g);
    EXPECT_NE(text.find("apexir 1"), std::string::npos);
    EXPECT_NE(text.find("mul"), std::string::npos);
    EXPECT_NE(text.find("\"x\""), std::string::npos);

    std::string error;
    const auto parsed = deserialize(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_TRUE(isomorphic(g, *parsed));
    EXPECT_EQ(parsed->node(1).param, 7u);
    EXPECT_EQ(parsed->node(0).name, "x");
}

TEST(SerializeTest, RoundTripPreservesSemantics) {
    const auto app = apps::gaussianBlur(1);
    const std::string text = serialize(app.graph);
    std::string error;
    const auto parsed = deserialize(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_EQ(parsed->size(), app.graph.size());

    const Interpreter interp;
    EXPECT_EQ(interp.evalByOrder(app.graph, {123}),
              interp.evalByOrder(*parsed, {123}));
}

TEST(SerializeTest, RoundTripEveryApp) {
    for (const auto &app : apps::allApps()) {
        std::string error;
        const auto parsed = deserialize(serialize(app.graph),
                                        &error);
        ASSERT_TRUE(parsed.has_value()) << app.name << ": " << error;
        EXPECT_EQ(parsed->size(), app.graph.size()) << app.name;
        EXPECT_TRUE(parsed->validate()) << app.name;
    }
}

TEST(SerializeTest, EscapesQuotesInNames) {
    Graph g;
    g.addNode(Op::kInput, {}, 0, "a\"b\\c");
    const auto parsed = deserialize(serialize(g));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->node(0).name, "a\"b\\c");
}

TEST(SerializeTest, CommentsAndBlankLinesIgnored) {
    const std::string text =
        "apexir 1\n"
        "# a comment\n"
        "n0 = input\n"
        "\n"
        "n1 = output n0\n";
    const auto parsed = deserialize(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->size(), 2u);
}

TEST(SerializeTest, RejectsMissingHeader) {
    std::string error;
    EXPECT_FALSE(deserialize("n0 = input\n", &error).has_value());
    EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(SerializeTest, RejectsForwardReference) {
    std::string error;
    EXPECT_FALSE(deserialize("apexir 1\nn0 = reg n1\nn1 = input\n",
                             &error)
                     .has_value());
    EXPECT_NE(error.find("forward"), std::string::npos);
}

TEST(SerializeTest, RejectsUnknownOp) {
    std::string error;
    EXPECT_FALSE(
        deserialize("apexir 1\nn0 = frobnicate\n", &error)
            .has_value());
    EXPECT_NE(error.find("unknown op"), std::string::npos);
}

TEST(SerializeTest, RejectsNonDenseIds) {
    std::string error;
    EXPECT_FALSE(
        deserialize("apexir 1\nn5 = input\n", &error).has_value());
    EXPECT_NE(error.find("dense"), std::string::npos);
}

TEST(SerializeTest, RejectsInvalidGraph) {
    // add with a single operand fails validation after parsing.
    std::string error;
    EXPECT_FALSE(deserialize("apexir 1\nn0 = input\nn1 = add n0\n",
                             &error)
                     .has_value());
    EXPECT_NE(error.find("invalid graph"), std::string::npos);
}

// --- Hostile input: parseGraph must reject, never crash ---------------

TEST(SerializeTest, ParseGraphReturnsTypedLineTaggedErrors) {
    const auto r = parseGraph("apexir 1\nn0 = frobnicate\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kParseError);
    EXPECT_NE(r.status().message().find("line 2"),
              std::string::npos);
}

TEST(SerializeTest, RejectsDuplicateNodeIds) {
    std::string error;
    EXPECT_FALSE(
        deserialize("apexir 1\nn0 = input\nn0 = input\n", &error)
            .has_value());
    EXPECT_FALSE(error.empty());
}

TEST(SerializeTest, RejectsOutOfRangeNodeIds) {
    // An id too large for NodeId must not wrap around.
    std::string error;
    EXPECT_FALSE(
        deserialize("apexir 1\nn99999999999999999999 = input\n",
                    &error)
            .has_value());
    EXPECT_FALSE(error.empty());
}

TEST(SerializeTest, RejectsUnterminatedQuotedName) {
    std::string error;
    EXPECT_FALSE(
        deserialize("apexir 1\nn0 = input \"oops\n", &error)
            .has_value());
    EXPECT_NE(error.find("unterminated"), std::string::npos);

    // A trailing backslash must not read past the end either.
    EXPECT_FALSE(
        deserialize("apexir 1\nn0 = input \"oops\\", &error)
            .has_value());
    EXPECT_NE(error.find("unterminated"), std::string::npos);
}

TEST(SerializeTest, RejectsOverflowingConstParam) {
    // 2^64 overflows uint64; must be a parse error, not silent wrap.
    std::string error;
    EXPECT_FALSE(
        deserialize("apexir 1\nn0 = const 18446744073709551616\n",
                    &error)
            .has_value());
    EXPECT_FALSE(error.empty());

    // The largest representable value still parses.
    const auto ok =
        parseGraph("apexir 1\nn0 = const 18446744073709551615\n");
    ASSERT_TRUE(ok.ok()) << ok.status().toString();
    EXPECT_EQ(ok->node(0).param, ~0ull);
}

TEST(SerializeTest, RejectsNegativeAndMalformedOperands) {
    std::string error;
    EXPECT_FALSE(
        deserialize("apexir 1\nn0 = input\nn1 = reg n-1\n", &error)
            .has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(
        deserialize("apexir 1\nn0 = input\nn1 = reg nxyz\n", &error)
            .has_value());
    EXPECT_FALSE(error.empty());
}

TEST(SerializeTest, RejectsTrailingTokensAfterName) {
    std::string error;
    EXPECT_FALSE(
        deserialize("apexir 1\nn0 = input \"x\" garbage\n", &error)
            .has_value());
    EXPECT_NE(error.find("trailing"), std::string::npos);
}

} // namespace
} // namespace apex::ir
