#include <gtest/gtest.h>

#include "core/evaluate.hpp"
#include "core/explorer.hpp"
#include "model/tech.hpp"

namespace apex::core {
namespace {

const model::TechModel &tech = model::defaultTech();

TEST(ExplorerTest, AnalyzeProducesViableRankedPatterns) {
    Explorer ex;
    const auto app = apps::gaussianBlur(4);
    const auto patterns = ex.analyze(app.graph);
    ASSERT_FALSE(patterns.empty());
    for (const auto &p : patterns) {
        EXPECT_GE(p.core_size, 2);
        EXPECT_GE(p.mis_size, ex.options().min_mis);
        EXPECT_TRUE(p.pattern.validate());
    }
    for (std::size_t i = 1; i < patterns.size(); ++i)
        EXPECT_GE(patterns[i - 1].mis_size, patterns[i].mis_size);
}

TEST(ExplorerTest, VariantRecipeShrinksWithSpecialization) {
    Explorer ex;
    const auto app = apps::cameraPipeline(1);

    const PeVariant base = ex.baselineVariant();
    const PeVariant pe1 = ex.subsetVariant(app);
    EXPECT_LT(pe1.spec.area(tech), base.spec.area(tech))
        << "PE 1 drops unused hardware";

    // Merging subgraphs grows the PE core itself...
    const PeVariant pe2 = ex.specializedVariant(app, 1);
    EXPECT_GE(pe2.spec.area(tech), pe1.spec.area(tech) * 0.9);
    EXPECT_FALSE(pe2.patterns.empty());
}

TEST(ExplorerTest, DomainVariantCoversAllApps) {
    Explorer ex;
    const auto ip = apps::ipApps();
    const PeVariant pe_ip = ex.domainVariant(ip, 1, "pe_ip");
    EXPECT_GE(pe_ip.patterns.size(), 2u)
        << "at least two distinct domain subgraphs expected";
    EXPECT_TRUE(pe_ip.spec.dp.validate());
}

TEST(EvaluateTest, PostMappingCameraSpecializationShape) {
    // Fig. 11 / Table 2 shape: specialization reduces #PEs and total
    // PE area and energy monotonically-ish from baseline to PE spec.
    Explorer ex;
    const auto app = apps::cameraPipeline(1);

    const auto base = evaluate(app, ex.baselineVariant(),
                               EvalLevel::kPostMapping, tech);
    const auto pe1 = evaluate(app, ex.subsetVariant(app),
                              EvalLevel::kPostMapping, tech);
    const auto spec = evaluate(app, bestSpecializedVariant(app, ex, tech),
                               EvalLevel::kPostMapping, tech);
    ASSERT_TRUE(base.success) << base.error;
    ASSERT_TRUE(pe1.success) << pe1.error;
    ASSERT_TRUE(spec.success) << spec.error;

    // PE 1: same PE count (same coverage), smaller area.
    EXPECT_EQ(pe1.pe_count, base.pe_count);
    EXPECT_LT(pe1.pe_area, base.pe_area);
    EXPECT_LT(pe1.pe_energy, base.pe_energy);

    // PE spec: fewer PEs and lower area/energy than baseline.
    EXPECT_LT(spec.pe_count, base.pe_count);
    EXPECT_LT(spec.pe_area, pe1.pe_area * 1.05);
    EXPECT_LT(spec.pe_energy, pe1.pe_energy);

    // Headline: large reduction vs baseline.  The paper reports up
    // to -78% area / -68% energy from gate-level synthesis; the
    // analytic cost model here reproduces the direction and a
    // substantial fraction of the magnitude (see EXPERIMENTS.md).
    EXPECT_LT(spec.pe_area, 0.65 * base.pe_area);
    EXPECT_LT(spec.pe_energy, 0.85 * base.pe_energy);
}

TEST(EvaluateTest, PostPnrAddsInterconnect) {
    Explorer ex;
    const auto app = apps::gaussianBlur(2);
    const auto r = evaluate(app, ex.baselineVariant(),
                            EvalLevel::kPostPnr, tech);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_GT(r.sb_area, 0.0);
    EXPECT_GT(r.cb_area, 0.0);
    EXPECT_GT(r.mem_area, 0.0);
    EXPECT_GT(r.cgra_area, r.pe_area);
    EXPECT_GT(r.cgra_energy, r.pe_energy);
    EXPECT_EQ(r.util.pes, r.pe_count);
}

TEST(EvaluateTest, PostPipeliningImprovesPerformance) {
    Explorer ex;
    const auto app = apps::gaussianBlur(2);
    const PeVariant spec_variant = ex.specVariant(app);

    const auto pnr = evaluate(app, spec_variant,
                              EvalLevel::kPostPnr, tech);
    const auto piped = evaluate(app, spec_variant,
                                EvalLevel::kPostPipelining, tech);
    ASSERT_TRUE(pnr.success) << pnr.error;
    ASSERT_TRUE(piped.success) << piped.error;

    // Fig. 16 shape: pipelining cuts the clock period (the merged
    // datapath is deep), at some register/RF cost.
    EXPECT_LT(piped.period_ns, pnr.period_ns);
    EXPECT_GT(piped.pipeline_stages, 0);
    EXPECT_GT(piped.frames_per_ms_mm2, 0.0);
    EXPECT_LE(piped.period_ns, tech.target_period + 0.35);
}

TEST(EvaluateTest, DomainPeBeatsBaselineOnUnseenApps) {
    // Fig. 13 shape: PE IP, built WITHOUT seeing laplacian, still
    // beats the baseline on it.
    Explorer ex;
    const PeVariant pe_ip =
        ex.domainVariant(apps::ipApps(), 1, "pe_ip");
    const auto unseen = apps::laplacianPyramid(1);

    const auto base = evaluate(unseen, ex.baselineVariant(),
                               EvalLevel::kPostMapping, tech);
    const auto ip = evaluate(unseen, pe_ip,
                             EvalLevel::kPostMapping, tech);
    ASSERT_TRUE(base.success) << base.error;
    ASSERT_TRUE(ip.success) << ip.error;
    EXPECT_LT(ip.pe_area, base.pe_area);
    EXPECT_LT(ip.pe_energy, base.pe_energy);
}

TEST(EvaluateTest, MlPeOnMlApps) {
    Explorer ex;
    const PeVariant pe_ml =
        ex.domainVariant(apps::mlApps(), 1, "pe_ml");
    const auto app = apps::mobilenetLayer(2);

    const auto base = evaluate(app, ex.baselineVariant(),
                               EvalLevel::kPostMapping, tech);
    const auto ml = evaluate(app, pe_ml, EvalLevel::kPostMapping,
                             tech);
    ASSERT_TRUE(base.success) << base.error;
    ASSERT_TRUE(ml.success) << ml.error;
    EXPECT_LT(ml.pe_count, base.pe_count);
    EXPECT_LT(ml.pe_area, base.pe_area);
}

TEST(EvaluateTest, ReportsFailureForUndersizedFabric) {
    Explorer ex;
    const auto app = apps::cameraPipeline(2);
    EvalOptions options;
    options.fabric_width = 4;
    options.fabric_height = 2;
    options.auto_grow_fabric = false;
    const auto r = evaluate(app, ex.baselineVariant(),
                            EvalLevel::kPostPnr, tech, options);
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(r.error.empty());
}

TEST(EvaluateTest, AutoGrowRecoversFromSmallFabric) {
    Explorer ex;
    const auto app = apps::gaussianBlur(1);
    EvalOptions options;
    options.fabric_width = 4;
    options.fabric_height = 2;
    const auto r = evaluate(app, ex.baselineVariant(),
                            EvalLevel::kPostPnr, tech, options);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_GT(r.fabric_width * r.fabric_height, 8);
}

} // namespace
} // namespace apex::core
