#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/status.hpp"
#include "ir/builder.hpp"
#include "ir/serialize.hpp"
#include "mining/miner.hpp"
#include "runtime/thread_pool.hpp"

/**
 * @file
 * Differential tests: the DFS-code engine (MinerEngine::kDfsCode) must
 * produce byte-identical pattern lists to the historic engine kept in
 * miner_reference.cpp, on every paper application and on randomized
 * graphs, under both support metrics, at any job count, and in the
 * max_embeddings overflow regime.
 */

namespace apex::mining {
namespace {

using ir::Graph;
using ir::GraphBuilder;
using ir::Value;

/** Full byte comparison of two mined pattern lists. */
void
expectIdentical(const std::vector<MinedPattern> &ref,
                const std::vector<MinedPattern> &got,
                const std::string &context)
{
    ASSERT_EQ(ref.size(), got.size()) << context;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        const std::string at = context + " pattern " +
                               std::to_string(i);
        EXPECT_EQ(ref[i].code, got[i].code) << at;
        EXPECT_EQ(ir::serialize(ref[i].pattern),
                  ir::serialize(got[i].pattern)) << at;
        EXPECT_EQ(ref[i].core_size, got[i].core_size) << at;
        EXPECT_EQ(ref[i].occurrences, got[i].occurrences) << at;
        EXPECT_EQ(ref[i].frequency, got[i].frequency) << at;
        EXPECT_EQ(ref[i].mni_support, got[i].mni_support) << at;
    }
}

/** Run both engines on @p app with @p opt and compare everything. */
void
runDifferential(const Graph &app, MinerOptions opt,
                const std::string &context,
                MineStats *ref_out = nullptr,
                MineStats *dfs_out = nullptr)
{
    opt.engine = MinerEngine::kReference;
    MineStats ref_stats;
    const auto ref = FrequentSubgraphMiner(opt).mine(app, &ref_stats);

    opt.engine = MinerEngine::kDfsCode;
    MineStats dfs_stats;
    const auto got = FrequentSubgraphMiner(opt).mine(app, &dfs_stats);

    expectIdentical(ref, got, context);
    EXPECT_EQ(ref_stats.capped_levels, dfs_stats.capped_levels)
        << context;
    EXPECT_EQ(ref_stats.patterns, dfs_stats.patterns) << context;
    if (ref_out != nullptr)
        *ref_out = ref_stats;
    if (dfs_out != nullptr)
        *dfs_out = dfs_stats;
}

/** Deterministic DAG generator (LCG; no std::random across stdlibs). */
class Lcg {
  public:
    explicit Lcg(std::uint64_t seed) : state_(seed * 2 + 1) {}
    std::uint64_t next()
    {
        state_ = state_ * 6364136223846793005ULL +
                 1442695040888963407ULL;
        return state_ >> 33;
    }
    int below(int n) { return static_cast<int>(next() % n); }

  private:
    std::uint64_t state_;
};

Graph
randomDag(std::uint64_t seed, int nodes)
{
    GraphBuilder b;
    Lcg rng(seed);
    std::vector<Value> values;
    for (int i = 0; i < 4; ++i)
        values.push_back(b.input("in" + std::to_string(i)));
    for (int i = 0; i < nodes; ++i) {
        const Value a = values[rng.below(
            static_cast<int>(values.size()))];
        const Value c = values[rng.below(
            static_cast<int>(values.size()))];
        Value v;
        switch (rng.below(5)) {
          case 0: v = b.add(a, c); break;
          case 1: v = b.mul(a, c); break;
          case 2: v = b.sub(a, c); break;
          case 3: v = b.max(a, c); break;
          default:
            v = b.add(a, b.constant(rng.below(3), "k"));
            break;
        }
        values.push_back(v);
    }
    b.output(values.back(), "out");
    return b.take();
}

TEST(MiningDifferentialTest, AllPaperApps) {
    MineStats ref_total, dfs_total;
    for (const apps::AppInfo &info : apps::allApps()) {
        MineStats ref_stats, dfs_stats;
        runDifferential(info.graph,
                        {.min_support = 3,
                         .max_pattern_nodes = 4,
                         .max_patterns_per_level = 256},
                        info.name, &ref_stats, &dfs_stats);
        ref_total.matcher_calls += ref_stats.matcher_calls;
        dfs_total.matcher_calls += dfs_stats.matcher_calls;
    }
    // The point of the engine: support comes from incremental
    // embedding extension, not isomorphism re-matching.  The bench
    // gate requires >= 3x fewer matcher invocations; assert the same
    // bound here so a silent regression fails in plain ctest too.
    EXPECT_LE(dfs_total.matcher_calls * 3, ref_total.matcher_calls);
}

TEST(MiningDifferentialTest, RandomGraphsBothMetrics) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Graph g = randomDag(seed, 40 + 5 * (seed % 3));
        for (const SupportMetric metric :
             {SupportMetric::kDistinctNodeSets, SupportMetric::kMni}) {
            for (const int support : {2, 3}) {
                runDifferential(
                    g,
                    {.min_support = support,
                     .max_pattern_nodes = 4,
                     .metric = metric},
                    "seed " + std::to_string(seed) + " metric " +
                        std::to_string(static_cast<int>(metric)) +
                        " support " + std::to_string(support));
            }
        }
    }
}

TEST(MiningDifferentialTest, JobsInvariance) {
    const apps::AppInfo app = apps::gaussianBlur();
    MinerOptions opt{.min_support = 3, .max_pattern_nodes = 4};
    const auto sequential = FrequentSubgraphMiner(opt).mine(app.graph);
    MineStats seq_stats;
    FrequentSubgraphMiner(opt).mine(app.graph, &seq_stats);
    for (const int jobs : {2, 4}) {
        runtime::ThreadPool pool(jobs);
        MinerOptions popt = opt;
        popt.pool = &pool;
        MineStats par_stats;
        const auto parallel =
            FrequentSubgraphMiner(popt).mine(app.graph, &par_stats);
        expectIdentical(sequential, parallel,
                        "jobs " + std::to_string(jobs));
        // Stats are scheduling-invariant too, not just the output.
        EXPECT_EQ(seq_stats.candidates, par_stats.candidates);
        EXPECT_EQ(seq_stats.duplicates, par_stats.duplicates);
        EXPECT_EQ(seq_stats.embeddings, par_stats.embeddings);
        EXPECT_EQ(seq_stats.matcher_calls, par_stats.matcher_calls);
        EXPECT_EQ(seq_stats.capped_levels, par_stats.capped_levels);
    }
}

TEST(MiningDifferentialTest, ReferenceEngineJobsInvariance) {
    const apps::AppInfo app = apps::unsharp();
    MinerOptions opt{.min_support = 3,
                     .max_pattern_nodes = 4,
                     .engine = MinerEngine::kReference};
    const auto sequential = FrequentSubgraphMiner(opt).mine(app.graph);
    runtime::ThreadPool pool(3);
    opt.pool = &pool;
    const auto parallel = FrequentSubgraphMiner(opt).mine(app.graph);
    expectIdentical(sequential, parallel, "reference jobs 3");
}

TEST(MiningDifferentialTest, DeadlineExpiryBothEngines) {
    const apps::AppInfo app = apps::gaussianBlur();
    for (const MinerEngine engine :
         {MinerEngine::kDfsCode, MinerEngine::kReference}) {
        MinerOptions opt{.min_support = 2,
                         .max_pattern_nodes = 4,
                         .engine = engine,
                         .deadline = Deadline::after(0)};
        try {
            FrequentSubgraphMiner(opt).mine(app.graph);
            FAIL() << "expired deadline must throw";
        } catch (const ApexError &e) {
            EXPECT_EQ(e.status().code(), ErrorCode::kTimeout);
            EXPECT_NE(e.status().message().find("mining level"),
                      std::string::npos);
        }
    }
}

TEST(MiningDifferentialTest, MaxEmbeddingsOverflowFallback) {
    // A cap far below the real embedding counts forces the incremental
    // lists to overflow into the matcher fallback; the engines must
    // stay identical because the fallback reproduces the reference's
    // truncated matcher lists exactly.
    const apps::AppInfo app = apps::gaussianBlur();
    for (const std::size_t cap : {std::size_t{4}, std::size_t{16}}) {
        MineStats ref_stats, dfs_stats;
        runDifferential(app.graph,
                        {.min_support = 2,
                         .max_pattern_nodes = 4,
                         .max_embeddings = cap},
                        "cap " + std::to_string(cap), &ref_stats,
                        &dfs_stats);
        EXPECT_GT(dfs_stats.matcher_calls, 0) << "cap " << cap;
    }
}

TEST(MiningDifferentialTest, MinSupportEdgeCases) {
    const Graph g = randomDag(42, 30);
    // Support of 1 keeps everything; a huge support keeps nothing.
    runDifferential(g, {.min_support = 1, .max_pattern_nodes = 3},
                    "support 1");
    MinerOptions none{.min_support = 1000};
    none.engine = MinerEngine::kDfsCode;
    EXPECT_TRUE(FrequentSubgraphMiner(none).mine(g).empty());
    none.engine = MinerEngine::kReference;
    EXPECT_TRUE(FrequentSubgraphMiner(none).mine(g).empty());
}

TEST(MiningDifferentialTest, FrontierTruncationDetectedIdentically) {
    const apps::AppInfo app = apps::gaussianBlur();
    MineStats ref_stats, dfs_stats;
    runDifferential(app.graph,
                    {.min_support = 2,
                     .max_pattern_nodes = 4,
                     .max_patterns_per_level = 3},
                    "capped frontier", &ref_stats, &dfs_stats);
    EXPECT_FALSE(dfs_stats.capped_levels.empty());
    EXPECT_EQ(ref_stats.capped_levels, dfs_stats.capped_levels);
}

} // namespace
} // namespace apex::mining
