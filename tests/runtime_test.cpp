/**
 * Tests for the parallel DSE runtime: the work-stealing thread pool,
 * the dependency-aware task graph, the content-addressed artifact
 * cache, and the determinism contract of the parallel sweep driver
 * (identical results for any job count).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/evaluate.hpp"
#include "core/explorer.hpp"
#include "core/sweep.hpp"
#include "model/tech.hpp"
#include "runtime/cache.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace apex;
namespace fs = std::filesystem;

/** Unique scratch dir per test, removed on scope exit. */
class ScratchDir {
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                ("apex_runtime_test_" + tag))
    {
        fs::remove_all(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

// --- ThreadPool --------------------------------------------------------

TEST(ThreadPool, StressTenThousandTasks)
{
    runtime::ThreadPool pool(8);
    constexpr int kTasks = 10000;
    std::vector<int> hits(kTasks, 0);
    runtime::parallelFor(&pool, kTasks, [&](int i) { hits[i] += 1; });
    // Every index ran exactly once — no drops, no double-claims.
    // (Pool counters are not asserted: helper drain tasks may still
    // be queued when parallelFor returns.)
    for (int i = 0; i < kTasks; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, SequentialPoolRunsInline)
{
    runtime::ThreadPool pool(1);
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    // parallelism <= 1: submit() executes before returning.
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(pool.parallelism(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException)
{
    runtime::ThreadPool pool(4);
    try {
        runtime::parallelFor(&pool, 64, [&](int i) {
            if (i % 7 == 3)
                throw std::runtime_error("boom " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        // Lowest failing index wins, independent of interleaving.
        EXPECT_STREQ(e.what(), "boom 3");
    }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    runtime::ThreadPool pool(4);
    std::atomic<int> total{0};
    runtime::parallelFor(&pool, 16, [&](int) {
        runtime::parallelFor(&pool, 16, [&](int) { ++total; });
    });
    EXPECT_EQ(total.load(), 256);
}

// --- TaskGraph ---------------------------------------------------------

TEST(TaskGraph, DiamondDependenciesRespectOrder)
{
    for (int lanes : {1, 8}) {
        runtime::ThreadPool pool(lanes);
        runtime::TaskGraph graph(&pool);
        std::atomic<int> step{0};
        int at_a = -1, at_b = -1, at_c = -1, at_d = -1;
        const auto a = graph.add("a", [&] {
            at_a = step++;
            return Status::okStatus();
        });
        const auto b = graph.add(
            "b",
            [&] {
                at_b = step++;
                return Status::okStatus();
            },
            {a});
        const auto c = graph.add(
            "c",
            [&] {
                at_c = step++;
                return Status::okStatus();
            },
            {a});
        graph.add(
            "d",
            [&] {
                at_d = step++;
                return Status::okStatus();
            },
            {b, c});
        EXPECT_TRUE(graph.run().ok()) << "lanes=" << lanes;
        EXPECT_EQ(at_a, 0);
        EXPECT_EQ(at_d, 3);
        EXPECT_TRUE((at_b == 1 && at_c == 2) ||
                    (at_b == 2 && at_c == 1));
    }
}

TEST(TaskGraph, FanInWaitsForAllDependencies)
{
    runtime::ThreadPool pool(8);
    runtime::TaskGraph graph(&pool);
    constexpr int kProducers = 32;
    std::atomic<int> produced{0};
    std::vector<runtime::TaskId> deps;
    for (int i = 0; i < kProducers; ++i)
        deps.push_back(graph.add("p" + std::to_string(i), [&] {
            ++produced;
            return Status::okStatus();
        }));
    int seen_at_sink = -1;
    graph.add(
        "sink",
        [&] {
            seen_at_sink = produced.load();
            return Status::okStatus();
        },
        deps);
    EXPECT_TRUE(graph.run().ok());
    EXPECT_EQ(seen_at_sink, kProducers);
}

TEST(TaskGraph, FailedDependencyCancelsDependents)
{
    runtime::TaskGraph graph; // inline mode
    const auto a = graph.add("ok", [] { return Status::okStatus(); });
    const auto b = graph.add(
        "bad",
        [] { return Status(ErrorCode::kPlaceFailed, "no seat"); },
        {a});
    bool c_ran = false;
    const auto c = graph.add(
        "downstream",
        [&] {
            c_ran = true;
            return Status::okStatus();
        },
        {b});

    const Status s = graph.run();
    EXPECT_EQ(s.code(), ErrorCode::kPlaceFailed);
    EXPECT_FALSE(c_ran);
    EXPECT_TRUE(graph.taskStatus(a).ok());
    EXPECT_EQ(graph.taskStatus(b).code(), ErrorCode::kPlaceFailed);
    EXPECT_EQ(graph.taskStatus(c).code(), ErrorCode::kCancelled);
    // Both failures end up in the diagnostics trail, in id order.
    const auto &trail = graph.diagnostics().records();
    ASSERT_EQ(trail.size(), 2u);
    EXPECT_EQ(trail[0].scope, "bad");
    EXPECT_EQ(trail[1].scope, "downstream");
}

TEST(TaskGraph, DependencyOnLaterTaskThrows)
{
    runtime::TaskGraph graph;
    graph.add("a", [] { return Status::okStatus(); });
    EXPECT_THROW(
        graph.add(
            "b", [] { return Status::okStatus(); }, {5}),
        ApexError);
}

// --- ArtifactCache -----------------------------------------------------

TEST(ArtifactCache, MemoryHitAndMiss)
{
    runtime::ArtifactCache cache;
    EXPECT_FALSE(cache.get("k").has_value());
    cache.put("k", "value");
    const auto hit = cache.get("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "value");
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.memory_hits, 1);
}

TEST(ArtifactCache, LruEvictsOldestFirst)
{
    runtime::ArtifactCache cache({.max_memory_entries = 2});
    cache.put("a", "1");
    cache.put("b", "2");
    (void)cache.get("a"); // refresh a; b is now the LRU entry
    cache.put("c", "3");  // evicts b
    EXPECT_TRUE(cache.get("a").has_value());
    EXPECT_FALSE(cache.get("b").has_value());
    EXPECT_TRUE(cache.get("c").has_value());
    EXPECT_EQ(cache.stats().evictions, 1);
    EXPECT_EQ(cache.memoryEntries(), 2u);
}

TEST(ArtifactCache, DiskTierSurvivesNewProcessImage)
{
    ScratchDir dir("disk");
    {
        runtime::ArtifactCache writer({.disk_dir = dir.str()});
        writer.put("key1", "payload one");
    }
    // A fresh cache instance stands in for a fresh process.
    runtime::ArtifactCache reader({.disk_dir = dir.str()});
    const auto hit = reader.get("key1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "payload one");
    EXPECT_EQ(reader.stats().disk_hits, 1);
    // The disk hit was promoted into memory.
    (void)reader.get("key1");
    EXPECT_EQ(reader.stats().memory_hits, 1);
}

TEST(ArtifactCache, CorruptDiskEntryIsDroppedNotServed)
{
    ScratchDir dir("corrupt");
    runtime::ArtifactCache writer({.disk_dir = dir.str()});
    writer.put("key1", "payload one");

    const std::string path = writer.diskPathFor("key1");
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << "apexcache 2 entry sum deadbeefdeadbeef len 11\n"
              "wrong bytes\n";
    }
    runtime::ArtifactCache reader({.disk_dir = dir.str()});
    EXPECT_FALSE(reader.get("key1").has_value());
    EXPECT_EQ(reader.stats().corrupt_dropped, 1);
    EXPECT_EQ(reader.stats().misses, 1);
    // The poisoned file was deleted, not left to fail forever.
    EXPECT_FALSE(fs::exists(path));
}

TEST(ArtifactCache, StaleSchemaVersionIsAMissNotGarbage)
{
    ScratchDir dir("verskew");
    runtime::ArtifactCache writer({.disk_dir = dir.str()});
    writer.put("key1", "payload one");

    // A v1-era entry left behind by an older build: right magic,
    // different schema version.  It must read as a version mismatch
    // (counted separately), never as deserialized garbage.
    const std::string path = writer.diskPathFor("key1");
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << "apexcache 1\nkey1 11\npayload one\n";
    }
    runtime::ArtifactCache reader({.disk_dir = dir.str()});
    EXPECT_FALSE(reader.get("key1").has_value());
    EXPECT_EQ(reader.stats().version_mismatches, 1);
    EXPECT_EQ(reader.stats().corrupt_dropped, 0);
    EXPECT_EQ(reader.stats().misses, 1);
    // The stale file was cleared so the slot can be rewritten.
    EXPECT_FALSE(fs::exists(path));
    reader.put("key1", "payload one");
    EXPECT_TRUE(reader.get("key1").has_value());
}

TEST(ArtifactCache, WrongKeyInFileIsACollisionNotAHit)
{
    ScratchDir dir("collision");
    runtime::ArtifactCache cache({.disk_dir = dir.str()});
    cache.put("key1", "payload");
    // Re-home key1's file under key2's name: a file-name collision.
    runtime::ArtifactCache other({.disk_dir = dir.str()});
    fs::rename(cache.diskPathFor("key1"), other.diskPathFor("key2"));
    EXPECT_FALSE(other.get("key2").has_value());
    EXPECT_EQ(other.stats().corrupt_dropped, 1);
}

// --- Parallel sweep: determinism + cancellation + caching --------------

std::vector<apps::AppInfo>
smallSuite()
{
    return {apps::gaussianBlur(2), apps::unsharp(1)};
}

/** Project a sweep outcome onto a comparable summary string. */
std::string
summarize(const core::SweepOutcome &out)
{
    std::string s;
    char buf[256];
    for (const auto &e : out.entries) {
        std::snprintf(buf, sizeof buf, "%s/%s area=%a energy=%a\n",
                      e.app.c_str(), e.variant.c_str(),
                      e.result.pe_area, e.result.pe_energy);
        s += buf;
    }
    for (const auto &f : out.report.failures)
        s += f.app + "/" + f.variant + " " + f.stage + "\n";
    return s;
}

TEST(ParallelSweep, JobCountDoesNotChangeResults)
{
    const auto suite = smallSuite();
    const model::TechModel tech = model::defaultTech();
    const core::Explorer explorer(tech);

    core::SweepOptions seq;
    seq.jobs = 1;
    const auto sequential = core::runSweep(suite, explorer, tech, seq);
    ASSERT_FALSE(sequential.entries.empty());

    core::SweepOptions par;
    par.jobs = 8;
    const auto parallel = core::runSweep(suite, explorer, tech, par);

    EXPECT_EQ(summarize(sequential), summarize(parallel));
    EXPECT_EQ(parallel.stats.jobs, 8);
    EXPECT_EQ(sequential.stats.tasks_run, parallel.stats.tasks_run);
}

TEST(ParallelSweep, CancellationSkipsCellsDeterministically)
{
    const auto suite = smallSuite();
    const model::TechModel tech = model::defaultTech();
    const core::Explorer explorer(tech);

    std::atomic<bool> cancel{true}; // cancelled before it starts
    core::SweepOptions options;
    options.cancel = &cancel;
    const auto out = core::runSweep(suite, explorer, tech, options);

    EXPECT_TRUE(out.entries.empty());
    ASSERT_EQ(out.report.failures.size(), suite.size());
    for (const auto &f : out.report.failures)
        EXPECT_EQ(f.status.code(), ErrorCode::kCancelled);
}

TEST(ParallelSweep, WarmCacheHitsEveryEvaluation)
{
    const auto suite = smallSuite();
    const model::TechModel tech = model::defaultTech();
    const core::Explorer explorer(tech);
    runtime::ArtifactCache cache;

    core::SweepOptions options;
    options.cache = &cache;
    const auto cold = core::runSweep(suite, explorer, tech, options);
    EXPECT_EQ(cold.stats.cache_hits, 0);
    EXPECT_GT(cold.stats.cache_misses, 0);

    const auto warm = core::runSweep(suite, explorer, tech, options);
    EXPECT_EQ(warm.stats.cache_misses, 0);
    EXPECT_EQ(warm.stats.cache_hits, cold.stats.cache_misses);
    EXPECT_EQ(summarize(cold), summarize(warm));
}

TEST(ParallelSweep, CachedResultsAreBitIdentical)
{
    const auto suite = smallSuite();
    const model::TechModel tech = model::defaultTech();
    const core::Explorer explorer(tech);
    runtime::ArtifactCache cache;

    core::SweepOptions plain;
    const auto uncached = core::runSweep(suite, explorer, tech, plain);

    core::SweepOptions cached;
    cached.cache = &cache;
    (void)core::runSweep(suite, explorer, tech, cached); // fill
    const auto warm = core::runSweep(suite, explorer, tech, cached);

    ASSERT_EQ(uncached.entries.size(), warm.entries.size());
    for (std::size_t i = 0; i < uncached.entries.size(); ++i) {
        const auto &a = uncached.entries[i].result;
        const auto &b = warm.entries[i].result;
        // Hex-float serialization must round-trip doubles exactly.
        EXPECT_EQ(a.pe_area, b.pe_area);
        EXPECT_EQ(a.pe_energy, b.pe_energy);
        EXPECT_EQ(a.runtime_ms, b.runtime_ms);
        EXPECT_EQ(a.perf_per_mm2, b.perf_per_mm2);
        EXPECT_EQ(a.pe_count, b.pe_count);
    }
}

TEST(ParallelSweep, TraceSpansPerLaneDoNotOverlap)
{
    telemetry::resetTracingForTesting();
    telemetry::setTracingEnabled(true);

    const auto suite = smallSuite();
    const model::TechModel tech = model::defaultTech();
    const core::Explorer explorer(tech);
    core::SweepOptions options;
    options.jobs = 4;
    const auto out = core::runSweep(suite, explorer, tech, options);
    ASSERT_FALSE(out.entries.empty());

    telemetry::setTracingEnabled(false);
    telemetry::collect();

    // Every span tagged with a worker lane ran on that lane's thread,
    // so the top-level (depth 0) intervals of one lane must tile the
    // timeline without overlapping each other.
    std::map<int, std::vector<const telemetry::SpanEvent *>> by_lane;
    for (const telemetry::SpanEvent &ev : telemetry::events())
        if (ev.lane >= 0 && ev.depth == 0)
            by_lane[ev.lane].push_back(&ev);
    EXPECT_FALSE(by_lane.empty());
    for (auto &[lane, spans] : by_lane) {
        std::sort(spans.begin(), spans.end(),
                  [](const telemetry::SpanEvent *a,
                     const telemetry::SpanEvent *b) {
                      return a->ts_us < b->ts_us;
                  });
        for (std::size_t i = 1; i < spans.size(); ++i) {
            EXPECT_GE(spans[i]->ts_us,
                      spans[i - 1]->ts_us + spans[i - 1]->dur_us)
                << "overlapping spans on lane " << lane << ": "
                << spans[i - 1]->name << " and " << spans[i]->name;
        }
    }
    telemetry::resetTracingForTesting();
}

TEST(ParallelSweep, SpanSetIsJobCountInvariantAndTraceScoped)
{
    // The schedule may interleave differently under more jobs, but
    // the *set* of spans a request produces — names, cell scopes,
    // args — is a pure function of the request.  Timestamps, lanes
    // and nesting depth are schedule, so they are excluded.
    const auto suite = smallSuite();
    const model::TechModel tech = model::defaultTech();
    const core::Explorer explorer(tech);

    const auto spanSetFor = [&](int jobs, std::uint64_t trace_id) {
        telemetry::resetTracingForTesting();
        telemetry::setTracingEnabled(true);
        core::SweepOptions options;
        options.jobs = jobs;
        options.trace_id = trace_id;
        const auto out = core::runSweep(suite, explorer, tech, options);
        EXPECT_FALSE(out.entries.empty());
        telemetry::setTracingEnabled(false);
        std::vector<std::string> set;
        for (const telemetry::SpanEvent &ev :
             telemetry::eventsForTrace(trace_id))
            set.push_back(ev.name + "|" + ev.scope + "|" + ev.args);
        telemetry::resetTracingForTesting();
        std::sort(set.begin(), set.end());
        return set;
    };

    const auto sequential = spanSetFor(1, 0x51);
    const auto parallel = spanSetFor(4, 0x52);
    EXPECT_FALSE(sequential.empty());
    EXPECT_EQ(sequential, parallel);
}

TEST(ParallelSweep, SweepSpansCarryTheRequestTraceId)
{
    telemetry::resetTracingForTesting();
    telemetry::setTracingEnabled(true);

    const auto suite = smallSuite();
    const model::TechModel tech = model::defaultTech();
    const core::Explorer explorer(tech);
    core::SweepOptions options;
    options.jobs = 4; // Pool lanes must inherit the id too.
    options.trace_id = 0xabc;
    const auto out = core::runSweep(suite, explorer, tech, options);
    ASSERT_FALSE(out.entries.empty());

    telemetry::setTracingEnabled(false);
    telemetry::collect();
    std::size_t scoped = 0;
    bool saw_lane_span = false;
    for (const telemetry::SpanEvent &ev : telemetry::events()) {
        EXPECT_EQ(ev.trace_id, 0xabcu) << ev.name;
        ++scoped;
        saw_lane_span |= ev.lane >= 0;
    }
    EXPECT_GT(scoped, 0u);
    EXPECT_TRUE(saw_lane_span);
    // The request context did not leak past runSweep's unwind.
    EXPECT_EQ(telemetry::currentTraceId(), 0u);
    telemetry::resetTracingForTesting();
}

} // namespace
