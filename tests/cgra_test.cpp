#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "apps/apps.hpp"
#include "cgra/bitstream.hpp"
#include "cgra/fabric.hpp"
#include "cgra/metrics.hpp"
#include "cgra/place.hpp"
#include "cgra/route.hpp"
#include "cgra/sim.hpp"
#include "cgra/visualize.hpp"
#include "ir/builder.hpp"
#include "ir/interpreter.hpp"
#include "ir/streaming.hpp"
#include "mapper/select.hpp"
#include "model/tech.hpp"
#include "pe/baseline.hpp"
#include "pipeline/app_pipeline.hpp"
#include "pipeline/pe_pipeline.hpp"

namespace apex::cgra {
namespace {

using mapper::MappedKind;

TEST(FabricTest, GeometryAndKinds) {
    const Fabric f(32, 16);
    EXPECT_EQ(f.kindAt({0, 0}), TileKind::kPe);
    EXPECT_EQ(f.kindAt({3, 0}), TileKind::kMem);
    EXPECT_EQ(f.kindAt({7, 5}), TileKind::kMem);
    EXPECT_EQ(f.kindAt({5, -1}), TileKind::kIo);
    EXPECT_EQ(f.kindAt({5, 16}), TileKind::kIo);
    EXPECT_EQ(f.peTiles().size(), 32u * 16u * 3u / 4u);
    EXPECT_EQ(f.memTiles().size(), 32u * 16u / 4u);
    EXPECT_EQ(f.ioTiles().size(), 64u);
}

TEST(FabricTest, IndexRoundTrip) {
    const Fabric f(8, 4);
    for (int y = -1; y <= 4; ++y) {
        for (int x = 0; x < 8; ++x) {
            const Coord c{x, y};
            EXPECT_EQ(f.coordAt(f.indexOf(c)), c);
        }
    }
}

TEST(FabricTest, LinkRoundTrip) {
    const Fabric f(8, 4);
    const Coord c{3, 2};
    for (const Coord &n : f.neighbours(c)) {
        const int link = f.linkIndex(c, n);
        const auto [src, dst] = f.linkEnds(link);
        EXPECT_EQ(src, c);
        EXPECT_EQ(dst, n);
    }
}

TEST(FabricTest, IoRowsOnlyConnectVertically) {
    const Fabric f(8, 4);
    for (const Coord &n : f.neighbours({3, -1}))
        EXPECT_EQ(n.y, 0);
}

/** Fully mapped small app fixture. */
struct Flow {
    apps::AppInfo app;
    pe::PeSpec spec;
    std::vector<mapper::RewriteRule> rules;
    mapper::SelectionResult sel;

    explicit Flow(apps::AppInfo a, bool pipeline_pes = false,
                  double target_period = 0.0)
        : app(std::move(a)), spec(pe::baselinePe())
    {
        mapper::RewriteRuleSynthesizer synth(spec);
        rules = synth.synthesizeLibrary({});
        mapper::InstructionSelector selector(rules);
        sel = selector.map(app.graph);
        if (pipeline_pes) {
            model::TechModel tech = model::defaultTech();
            pipeline::PePipelineOptions popt;
            if (target_period > 0.0) {
                // Aggressive mode for tests that need stages > 0
                // even on shallow PEs.
                tech.target_period = target_period;
                popt.min_gain = 0.005;
            }
            pipeline::pipelinePe(spec, tech, popt);
            pipeline::pipelineApplication(&sel.mapped,
                                          spec.pipeline_stages, {});
        }
    }
};

TEST(PlaceTest, GaussianPlacesLegally) {
    Flow flow(apps::gaussianBlur(1));
    ASSERT_TRUE(flow.sel.success) << flow.sel.error;

    const Fabric fabric(16, 8);
    const auto placement = place(fabric, flow.sel.mapped);
    ASSERT_TRUE(placement.success) << placement.error;

    // Legality: every placeable node on a tile of the right kind,
    // no two nodes sharing a tile.
    std::set<int> used;
    for (std::size_t id = 0; id < flow.sel.mapped.nodes.size();
         ++id) {
        const auto &n = flow.sel.mapped.nodes[id];
        if (!isPlaceable(n.kind)) {
            EXPECT_EQ(placement.loc[id].x, -1);
            continue;
        }
        const Coord c = placement.loc[id];
        ASSERT_TRUE(fabric.inBounds(c));
        EXPECT_TRUE(used.insert(fabric.indexOf(c)).second)
            << "two nodes share a tile";
        switch (n.kind) {
          case MappedKind::kPe:
          case MappedKind::kRegFile:
            EXPECT_EQ(fabric.kindAt(c), TileKind::kPe);
            break;
          case MappedKind::kMem:
            EXPECT_EQ(fabric.kindAt(c), TileKind::kMem);
            break;
          default:
            EXPECT_EQ(fabric.kindAt(c), TileKind::kIo);
        }
    }
}

TEST(PlaceTest, AnnealingImprovesOverScatter) {
    Flow flow(apps::harrisCorner(1));
    ASSERT_TRUE(flow.sel.success);
    const Fabric fabric(32, 16);

    PlacerOptions no_anneal;
    no_anneal.moves_per_node = 0;
    const auto scattered =
        place(fabric, flow.sel.mapped, no_anneal);
    const auto annealed = place(fabric, flow.sel.mapped);
    ASSERT_TRUE(scattered.success);
    ASSERT_TRUE(annealed.success);
    EXPECT_LT(annealed.wirelength, scattered.wirelength);
}

TEST(PlaceTest, FailsWhenFabricTooSmall) {
    Flow flow(apps::cameraPipeline(2));
    ASSERT_TRUE(flow.sel.success);
    const Fabric tiny(4, 2);
    const auto placement = place(tiny, flow.sel.mapped);
    EXPECT_FALSE(placement.success);
    EXPECT_NE(placement.error.find("too small"), std::string::npos);
}

TEST(PlaceTest, ContractionCountsRegisters) {
    Flow flow(apps::gaussianBlur(1));
    ASSERT_TRUE(flow.sel.success);
    const auto edges = contractRegisters(flow.sel.mapped);
    int regs = 0;
    for (const auto &e : edges) {
        EXPECT_TRUE(
            isPlaceable(flow.sel.mapped.nodes[e.src].kind));
        EXPECT_TRUE(
            isPlaceable(flow.sel.mapped.nodes[e.dst].kind));
        regs += e.regs;
    }
    // Registers shared by several consumers are replicated on each
    // consumer's route in the per-link abstraction, so the carried
    // count can exceed (never undershoot) the node count.
    EXPECT_GE(regs, flow.sel.mapped.count(MappedKind::kReg));
}

TEST(RouteTest, GaussianRoutesCongestionFree) {
    Flow flow(apps::gaussianBlur(2));
    ASSERT_TRUE(flow.sel.success);
    const Fabric fabric(16, 8);
    const auto placement = place(fabric, flow.sel.mapped);
    ASSERT_TRUE(placement.success);
    const auto routing = route(fabric, placement);
    ASSERT_TRUE(routing.success) << routing.error;

    // No link over capacity.
    for (int usage : routing.link_usage)
        EXPECT_LE(usage, 5);
    // Each path connects the right endpoints contiguously.
    for (std::size_t e = 0; e < placement.edges.size(); ++e) {
        const auto &path = routing.paths[e];
        Coord cursor = placement.loc[placement.edges[e].src];
        for (int link : path) {
            const auto [src, dst] = fabric.linkEnds(link);
            EXPECT_EQ(src, cursor);
            cursor = dst;
        }
        EXPECT_EQ(cursor, placement.loc[placement.edges[e].dst]);
    }
}

TEST(RouteTest, CongestionForcesDetours) {
    // Many nets through a narrow fabric still resolve.
    Flow flow(apps::harrisCorner(1));
    ASSERT_TRUE(flow.sel.success);
    const Fabric fabric(32, 16);
    const auto placement = place(fabric, flow.sel.mapped);
    ASSERT_TRUE(placement.success);
    const auto routing = route(fabric, placement);
    ASSERT_TRUE(routing.success) << routing.error;
    for (int usage : routing.link_usage)
        EXPECT_LE(usage, 5);
}

TEST(BitstreamTest, DeterministicAndConfigSensitive) {
    Flow flow(apps::gaussianBlur(1));
    ASSERT_TRUE(flow.sel.success);
    const Fabric fabric(16, 8);
    const auto placement = place(fabric, flow.sel.mapped);
    const auto routing = route(fabric, placement);
    ASSERT_TRUE(routing.success);

    const auto bs1 = generateBitstream(fabric, flow.sel.mapped,
                                       flow.rules, flow.spec,
                                       placement, routing);
    const auto bs2 = generateBitstream(fabric, flow.sel.mapped,
                                       flow.rules, flow.spec,
                                       placement, routing);
    EXPECT_GT(bs1.bits, 0);
    EXPECT_EQ(bs1.digest(), bs2.digest());

    // Changing one constant changes the stream.
    auto mutated = flow.sel.mapped;
    for (auto &n : mutated.nodes) {
        if (n.kind == MappedKind::kPe && !n.const_vals.empty()) {
            n.const_vals[0] ^= 0x5555;
            break;
        }
    }
    const auto bs3 = generateBitstream(fabric, mutated, flow.rules,
                                       flow.spec, placement,
                                       routing);
    EXPECT_NE(bs1.digest(), bs3.digest());
}

TEST(BitstreamTest, DecodeRoundTripsEveryField) {
    Flow flow(apps::gaussianBlur(1));
    ASSERT_TRUE(flow.sel.success);
    const Fabric fabric(16, 8);
    const auto placement = place(fabric, flow.sel.mapped);
    const auto routing = route(fabric, placement);
    ASSERT_TRUE(routing.success);
    const auto bs = generateBitstream(fabric, flow.sel.mapped,
                                      flow.rules, flow.spec,
                                      placement, routing);

    const int pe_count = flow.sel.mapped.count(MappedKind::kPe);
    const int rf_count =
        flow.sel.mapped.count(MappedKind::kRegFile);
    const auto decoded =
        decodeBitstream(bs, flow.spec, pe_count, rf_count);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->width, 16);
    EXPECT_EQ(decoded->height, 8);
    ASSERT_EQ(decoded->pes.size(),
              static_cast<std::size_t>(pe_count));

    // Each decoded PE config must equal the source config with its
    // constants bound.
    std::size_t k = 0;
    for (std::size_t id = 0; id < flow.sel.mapped.nodes.size();
         ++id) {
        const auto &n = flow.sel.mapped.nodes[id];
        if (n.kind != MappedKind::kPe)
            continue;
        const auto &rule = flow.rules[n.rule];
        pe::PeConfig want = rule.config;
        for (std::size_t c = 0; c < rule.const_bindings.size(); ++c)
            want.const_val[rule.const_bindings[c].second] =
                n.const_vals[c];
        const auto &got = decoded->pes[k].config;
        EXPECT_EQ(decoded->pes[k].tile_index,
                  fabric.indexOf(placement.loc[id]));
        EXPECT_EQ(got.mux_sel, want.mux_sel);
        EXPECT_EQ(got.const_val, want.const_val);
        EXPECT_EQ(got.lut_table, want.lut_table);
        EXPECT_EQ(got.word_out_sel, want.word_out_sel);
        EXPECT_EQ(got.bit_out_sel, want.bit_out_sel);
        for (int b : flow.spec.multi_op_blocks)
            EXPECT_EQ(got.block_op[b], want.block_op[b]);
        ++k;
    }

    // Decoded link records match the router's usage.
    for (const auto &[link, wires] : decoded->links) {
        ASSERT_LT(link,
                  static_cast<int>(routing.link_usage.size()));
        EXPECT_EQ(wires, routing.link_usage[link]);
    }

    // Truncated streams are rejected.
    Bitstream cut = bs;
    cut.bits /= 2;
    cut.words.resize((cut.bits + 63) / 64);
    EXPECT_FALSE(
        decodeBitstream(cut, flow.spec, pe_count, rf_count)
            .has_value());
}

TEST(VisualizeTest, FloorplanShowsOccupancy) {
    Flow flow(apps::gaussianBlur(1));
    ASSERT_TRUE(flow.sel.success);
    const Fabric fabric(16, 8);
    const auto placement = place(fabric, flow.sel.mapped);
    const auto routing = route(fabric, placement);
    ASSERT_TRUE(routing.success);

    const std::string full =
        visualize(fabric, flow.sel.mapped, placement, routing);
    EXPECT_NE(full.find("floorplan 16x8"), std::string::npos);
    // Count glyphs in the body only (the header legend also contains
    // the letters).
    const std::string art = full.substr(full.find('\n') + 1);
    auto count = [&](char c) {
        return std::count(art.begin(), art.end(), c);
    };
    EXPECT_EQ(count('P'), flow.sel.mapped.count(MappedKind::kPe));
    EXPECT_EQ(count('M'), flow.sel.mapped.count(MappedKind::kMem));
    EXPECT_EQ(count('I'),
              flow.sel.mapped.count(MappedKind::kInput) +
                  flow.sel.mapped.count(MappedKind::kInputBit));
    EXPECT_GT(count('+'), 0) << "some routing-only tiles expected";
    // 8 fabric rows + 2 IO rows.
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 10);
}

TEST(MetricsTest, UtilizationMatchesMappedCounts) {
    Flow flow(apps::gaussianBlur(2), /*pipeline_pes=*/true);
    ASSERT_TRUE(flow.sel.success);
    const Fabric fabric(16, 8);
    const auto placement = place(fabric, flow.sel.mapped);
    ASSERT_TRUE(placement.success) << placement.error;
    const auto routing = route(fabric, placement);
    ASSERT_TRUE(routing.success);

    const auto u = utilizationOf(fabric, flow.sel.mapped, placement,
                                 routing);
    EXPECT_EQ(u.pes, flow.sel.mapped.count(MappedKind::kPe));
    EXPECT_EQ(u.mems, flow.sel.mapped.count(MappedKind::kMem));
    EXPECT_EQ(u.regs, flow.sel.mapped.count(MappedKind::kReg));
    EXPECT_GT(u.sb_hops, 0);
    EXPECT_GE(u.routing_tiles, 0);
}

/** Streaming-correctness harness: simulate and compare with the
 * interpreter delayed by each output's latency. */
void
expectStreamingCorrect(Flow &flow, int cycles = 48)
{
    ASSERT_TRUE(flow.sel.success) << flow.sel.error;
    CycleSimulator sim(flow.sel.mapped, flow.rules, flow.spec);

    // Input streams: deterministic pseudo-random pixels.
    std::mt19937 rng(5);
    std::uniform_int_distribution<std::uint32_t> dist(0, 255);
    int input_count = 0, bit_positions = 0;
    std::vector<int> input_is_bit;
    for (ir::NodeId id = 0; id < flow.app.graph.size(); ++id) {
        const ir::Op op = flow.app.graph.op(id);
        if (op == ir::Op::kInput || op == ir::Op::kInputBit) {
            ++input_count;
            input_is_bit.push_back(op == ir::Op::kInputBit);
            bit_positions += op == ir::Op::kInputBit;
        }
    }
    std::vector<std::vector<std::uint64_t>> streams(input_count);
    for (int i = 0; i < input_count; ++i)
        for (int t = 0; t < cycles; ++t)
            streams[i].push_back(input_is_bit[i] ? (dist(rng) & 1)
                                                 : dist(rng));

    const auto trace = sim.run(streams, cycles);

    const ir::Interpreter interp;
    for (std::size_t o = 0; o < trace.outputs.size(); ++o) {
        const int lat = trace.latency[o];
        for (int t = 0; t + lat < cycles; ++t) {
            std::vector<std::uint64_t> sample;
            for (int i = 0; i < input_count; ++i)
                sample.push_back(streams[i][t]);
            const auto want =
                interp.evalByOrder(flow.app.graph, sample);
            EXPECT_EQ(trace.outputs[o][t + lat], want[o])
                << "output " << o << " cycle " << t;
            if (::testing::Test::HasFailure())
                return;
        }
    }
}

/** Streaming check against the cycle-accurate reference interpreter:
 * a windowed app (real functional registers) must match the
 * ir::StreamingInterpreter output shifted by each pad's pipeline
 * skew. */
void
expectWindowedStreamingCorrect(Flow &flow, int cycles = 64)
{
    ASSERT_TRUE(flow.sel.success) << flow.sel.error;
    ASSERT_TRUE(pipeline::delaysBalanced(flow.sel.mapped,
                                         flow.spec.pipeline_stages));
    CycleSimulator sim(flow.sel.mapped, flow.rules, flow.spec);

    std::mt19937 rng(11);
    std::uniform_int_distribution<std::uint32_t> dist(0, 255);
    int inputs = 0;
    for (ir::NodeId id = 0; id < flow.app.graph.size(); ++id) {
        const ir::Op op = flow.app.graph.op(id);
        inputs += op == ir::Op::kInput || op == ir::Op::kInputBit;
    }
    std::vector<std::vector<std::uint64_t>> streams(inputs);
    for (auto &s : streams)
        for (int t = 0; t < cycles; ++t)
            s.push_back(dist(rng));

    const auto trace = sim.run(streams, cycles);
    const ir::StreamingInterpreter ref;
    const auto golden = ref.run(flow.app.graph, streams, cycles);

    // Pipeline skew of each output pad relative to the functional
    // schedule.
    const auto skew = pipeline::pipelineSkew(
        flow.sel.mapped, flow.spec.pipeline_stages);
    std::vector<int> pads;
    for (std::size_t id = 0; id < flow.sel.mapped.nodes.size();
         ++id) {
        const auto k = flow.sel.mapped.nodes[id].kind;
        if (k == mapper::MappedKind::kOutput ||
            k == mapper::MappedKind::kOutputBit)
            pads.push_back(static_cast<int>(id));
    }
    std::sort(pads.begin(), pads.end(), [&](int a, int b) {
        return flow.sel.mapped.nodes[a].app_node <
               flow.sel.mapped.nodes[b].app_node;
    });

    ASSERT_EQ(trace.outputs.size(), golden.size());
    for (std::size_t o = 0; o < golden.size(); ++o) {
        const int d = skew[pads[o]];
        const int warmup = trace.latency[o] + 1;
        for (int t = warmup; t + d < cycles; ++t) {
            ASSERT_EQ(trace.outputs[o][t + d], golden[o][t])
                << "output " << o << " cycle " << t << " skew "
                << d;
        }
    }
}

TEST(SimTest, WindowedAppStreamsCorrectlyUnpipelined) {
    // Gaussian has real line-buffer and tap registers: the mapped
    // stream must equal the cycle-accurate reference exactly
    // (no PE pipelining, zero skew).
    Flow flow(apps::gaussianBlur(1));
    ASSERT_EQ(flow.spec.pipeline_stages, 0);
    expectWindowedStreamingCorrect(flow);
}

TEST(SimTest, PipelinedWindowedAppMatchesReferenceWithSkew) {
    // With pipelined PEs and branch-delay matching, the stream must
    // equal the reference shifted by the output's pipeline skew —
    // the window offsets themselves must be preserved (the
    // functional-vs-balancing register distinction).
    Flow flow(apps::gaussianBlur(1), /*pipeline_pes=*/true,
              /*target_period=*/0.6);
    ASSERT_GT(flow.spec.pipeline_stages, 0);
    expectWindowedStreamingCorrect(flow);
}

TEST(SimTest, PipelinedUnsharpWithRegisterFiles) {
    // Unsharp folds balancing chains into register files; skew
    // accounting must survive the RF substitution.
    Flow flow(apps::unsharp(1), /*pipeline_pes=*/true,
              /*target_period=*/0.6);
    expectWindowedStreamingCorrect(flow, 96);
}

/** Property sweep: windowed streaming correctness (pipelined, with
 * forced stages) across several applications. */
class StreamingSweepTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(StreamingSweepTest, PipelinedStreamMatchesReference) {
    const std::string name = GetParam();
    apps::AppInfo app = name == "gaussian" ? apps::gaussianBlur(1)
                        : name == "laplacian"
                            ? apps::laplacianPyramid(1)
                        : name == "mobilenet"
                            ? apps::mobilenetLayer(1)
                            : apps::unsharp(1);
    Flow flow(std::move(app), /*pipeline_pes=*/true,
              /*target_period=*/0.6);
    expectWindowedStreamingCorrect(flow, 72);
}

INSTANTIATE_TEST_SUITE_P(Apps, StreamingSweepTest,
                         ::testing::Values("gaussian", "laplacian",
                                           "mobilenet", "unsharp"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(SimTest, GaussianStreamsCorrectlyUnpipelined) {
    // Without PE pipelining the app graph's own registers (window
    // taps) still need correct streaming semantics — but the window
    // regs delay values, so the interpreter comparison only holds
    // for balanced graphs; gaussian's taps make outputs a function
    // of multiple time steps.  Use a pointwise app instead: unsharp
    // amplification chain on a single pixel has no cross-time taps.
    ir::GraphBuilder b;
    auto x = b.input("x");
    auto y = b.input("y");
    b.output(b.add(b.mul(x, b.constant(3)), y), "o");
    apps::AppInfo app;
    app.name = "pointwise";
    app.description = "test";
    app.domain = apps::Domain::kImageProcessing;
    app.graph = b.take();
    app.work_items_per_frame = 64;
    app.items_per_cycle = 1;

    Flow flow(std::move(app));
    expectStreamingCorrect(flow);
}

TEST(SimTest, PipelinedPointwiseMatchesWithLatency) {
    ir::GraphBuilder b;
    auto x = b.input("x");
    auto y = b.input("y");
    auto m = b.mul(x, x);
    auto s = b.add(m, b.mul(y, b.constant(7)));
    b.output(b.max(s, b.constant(0)), "o");
    apps::AppInfo app;
    app.name = "pointwise2";
    app.description = "test";
    app.domain = apps::Domain::kMachineLearning;
    app.graph = b.take();
    app.work_items_per_frame = 64;
    app.items_per_cycle = 1;

    Flow flow(std::move(app), /*pipeline_pes=*/true);
    ASSERT_TRUE(
        pipeline::delaysBalanced(flow.sel.mapped,
                                 flow.spec.pipeline_stages));
    expectStreamingCorrect(flow);
}

} // namespace
} // namespace apex::cgra
