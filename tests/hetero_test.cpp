#include <gtest/gtest.h>

#include <random>

#include "cgra/place.hpp"
#include "core/hetero.hpp"
#include "ir/interpreter.hpp"
#include "mapper/select.hpp"
#include "model/tech.hpp"
#include "pe/baseline.hpp"

namespace apex::core {
namespace {

const model::TechModel &tech = model::defaultTech();

TEST(CombineLibrariesTest, TagsTypesAndPrefersCheapOnTies) {
    const pe::PeSpec big = pe::baselinePe();
    const pe::PeSpec little = pe::baselineSubsetPe(
        {ir::Op::kAdd, ir::Op::kSub}, "little");

    mapper::RewriteRuleSynthesizer sb(big), sl(little);
    auto combined = mapper::combineLibraries(
        {sb.synthesizeLibrary({}), sl.synthesizeLibrary({})},
        {big.area(tech), little.area(tech)});

    ASSERT_FALSE(combined.empty());
    bool has_type0 = false, has_type1 = false;
    for (std::size_t i = 1; i < combined.size(); ++i)
        EXPECT_GE(combined[i - 1].size, combined[i].size);
    for (const auto &rule : combined) {
        has_type0 |= rule.pe_type == 0;
        has_type1 |= rule.pe_type == 1;
    }
    EXPECT_TRUE(has_type0);
    EXPECT_TRUE(has_type1);

    // For a plain add (both types implement it, same size/bindings),
    // the first matching rule must be the little PE's.
    for (const auto &rule : combined) {
        if (rule.size == 1 && rule.const_bindings.empty() &&
            rule.pattern.nodesWithOp(ir::Op::kAdd).size() == 1 &&
            rule.pattern.size() == 3) {
            EXPECT_EQ(rule.pe_type, 1)
                << "cheap PE must win the tie";
            break;
        }
    }
}

TEST(HeteroTest, BigLittleMapsAndSplitsWork) {
    Explorer ex;
    const auto app = apps::gaussianBlur(2);
    const HeteroCgra cgra = makeBigLittleCgra(
        ex.domainVariant(apps::ipApps(), 1, "pe_ip"), "biglittle");

    const auto r = evaluateHetero(app, cgra,
                                  EvalLevel::kPostMapping, tech);
    ASSERT_TRUE(r.success) << r.error;
    ASSERT_EQ(r.pe_count_by_type.size(), 2u);
    EXPECT_GT(r.pe_count_by_type[0], 0) << "MACs need the big PE";
    EXPECT_GT(r.pe_count_by_type[1], 0)
        << "plain adds/shifts should land on the little PE";
    EXPECT_EQ(r.pe_count,
              r.pe_count_by_type[0] + r.pe_count_by_type[1]);
}

TEST(HeteroTest, HeteroBeatsHomogeneousOnArea) {
    // The little PE absorbs single-op work at a fraction of the big
    // PE's area: total PE area must drop vs the homogeneous fabric.
    Explorer ex;
    const auto app = apps::gaussianBlur(2);
    const PeVariant pe_ip =
        ex.domainVariant(apps::ipApps(), 1, "pe_ip");

    const auto homo = evaluate(app, pe_ip,
                               EvalLevel::kPostMapping, tech);
    const auto hetero = evaluateHetero(
        app, makeBigLittleCgra(pe_ip, "biglittle"),
        EvalLevel::kPostMapping, tech);
    ASSERT_TRUE(homo.success) << homo.error;
    ASSERT_TRUE(hetero.success) << hetero.error;
    EXPECT_LT(hetero.pe_area, homo.pe_area);
    EXPECT_LE(hetero.pe_energy, homo.pe_energy * 1.05);
}

TEST(HeteroTest, FunctionalEquivalenceAcrossTypes) {
    Explorer ex;
    const auto app = apps::gaussianBlur(1);
    const HeteroCgra cgra = makeBigLittleCgra(
        ex.domainVariant(apps::ipApps(), 1, "pe_ip"), "biglittle");

    std::vector<std::vector<mapper::RewriteRule>> libs;
    std::vector<double> areas;
    std::vector<const pe::PeSpec *> specs;
    for (const PeVariant &v : cgra.types) {
        mapper::RewriteRuleSynthesizer synth(v.spec);
        libs.push_back(synth.synthesizeLibrary(v.patterns));
        areas.push_back(v.spec.area(tech));
        specs.push_back(&v.spec);
    }
    const auto rules =
        mapper::combineLibraries(std::move(libs), areas);
    mapper::InstructionSelector selector(rules);
    const auto sel = selector.map(app.graph);
    ASSERT_TRUE(sel.success) << sel.error;

    std::mt19937 rng(3);
    std::uniform_int_distribution<std::uint32_t> dist(0, 255);
    for (int trial = 0; trial < 4; ++trial) {
        const std::vector<std::uint64_t> inputs = {dist(rng)};
        const ir::Interpreter interp;
        const auto want = interp.evalByOrder(app.graph, inputs);
        const auto got = mapper::executeMappedHetero(
            sel.mapped, rules, specs, inputs);
        EXPECT_EQ(got, want);
    }
}

TEST(HeteroTest, PlacementRespectsTypePools) {
    Explorer ex;
    const auto app = apps::gaussianBlur(2);
    const HeteroCgra cgra = makeBigLittleCgra(
        ex.domainVariant(apps::ipApps(), 1, "pe_ip"), "biglittle");

    const auto r = evaluateHetero(app, cgra, EvalLevel::kPostPnr,
                                  tech);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_GT(r.cgra_area, r.pe_area);
    EXPECT_GT(r.cgra_energy, r.pe_energy);
    EXPECT_EQ(r.util.pes, r.pe_count);
}

TEST(HeteroTest, TypePoolCapacityIsEnforced) {
    // A fabric with very few tiles per pool must fail placement
    // rather than overfill one pool.
    Explorer ex;
    const auto app = apps::gaussianBlur(4);
    const HeteroCgra cgra = makeBigLittleCgra(
        ex.domainVariant(apps::ipApps(), 1, "pe_ip"), "biglittle");
    EvalOptions options;
    options.fabric_width = 4;
    options.fabric_height = 4;
    options.auto_grow_fabric = false;
    const auto r = evaluateHetero(app, cgra, EvalLevel::kPostPnr,
                                  tech, options);
    EXPECT_FALSE(r.success);
    EXPECT_NE(r.error.find("too small"), std::string::npos);
}

} // namespace
} // namespace apex::core
