#include <gtest/gtest.h>

#include <random>

#include "ir/builder.hpp"
#include "merging/clique.hpp"
#include "merging/datapath.hpp"
#include "merging/merge.hpp"
#include "model/tech.hpp"

namespace apex::merging {
namespace {

using ir::Graph;
using ir::GraphBuilder;
using ir::Op;
using ir::Value;

Graph
macPattern()
{
    // add(mul(in, const), in).
    GraphBuilder b;
    b.add(b.mul(b.input(), b.constant(3)), b.input());
    return b.take();
}

Graph
addChainPattern()
{
    // add(add(in, in), const).
    GraphBuilder b;
    b.add(b.add(b.input(), b.input()), b.constant(1));
    return b.take();
}

Graph
subShiftPattern()
{
    // lshr(sub(in, in), const-free input).
    GraphBuilder b;
    b.lshr(b.sub(b.input(), b.input()), b.input());
    return b.take();
}

TEST(DatapathTest, FromPatternStructure) {
    std::vector<int> map;
    const Datapath dp = datapathFromPattern(macPattern(), &map);
    std::string error;
    EXPECT_TRUE(dp.validate(&error)) << error;
    EXPECT_EQ(dp.inputIds().size(), 2u);
    EXPECT_EQ(dp.constIds().size(), 1u);
    EXPECT_EQ(dp.blockIds().size(), 2u);
    // Only the final add is an output.
    EXPECT_EQ(dp.outputIds().size(), 1u);
    const DpNode &out = dp.nodes[dp.outputIds()[0]];
    EXPECT_TRUE(out.ops.count(Op::kAdd));
}

TEST(DatapathTest, FunctionalAreaCountsBlocksAndMuxes) {
    const auto &tech = model::defaultTech();
    Datapath dp = datapathFromPattern(macPattern());
    const double base = dp.functionalArea(tech);
    const double expected =
        model::blockCost(tech, model::HwBlockClass::kMul).area +
        model::blockCost(tech, model::HwBlockClass::kAddSub).area +
        model::blockCost(tech, model::HwBlockClass::kConstReg).area;
    EXPECT_DOUBLE_EQ(base, expected);

    // Adding a second feasible source on a port costs one mux input.
    const int add_id = dp.outputIds()[0];
    dp.addEdgeUnique(DpEdge{dp.inputIds()[0], add_id, 0});
    EXPECT_DOUBLE_EQ(dp.functionalArea(tech),
                     expected + tech.mux_input_area);
}

TEST(CliqueTest, TriangleVsHeavyVertex) {
    // Triangle {0,1,2} with weight 3 total vs isolated vertex 3 with
    // weight 2.9: the triangle wins.
    CliqueProblem pb;
    pb.n = 4;
    pb.weight = {1.0, 1.0, 1.0, 2.9};
    pb.adj.assign(4, std::vector<bool>(4, false));
    auto connect = [&](int a, int b) {
        pb.adj[a][b] = pb.adj[b][a] = true;
    };
    connect(0, 1);
    connect(1, 2);
    connect(0, 2);
    const auto result = maxWeightClique(pb);
    EXPECT_DOUBLE_EQ(result.weight, 3.0);
    EXPECT_EQ(result.vertices, (std::vector<int>{0, 1, 2}));
    EXPECT_TRUE(result.optimal);
}

TEST(CliqueTest, EmptyGraph) {
    EXPECT_TRUE(maxWeightClique(CliqueProblem{}).vertices.empty());
}

TEST(CliqueTest, MatchesBruteForceOnRandomGraphs) {
    std::mt19937 rng(7);
    for (int trial = 0; trial < 30; ++trial) {
        CliqueProblem pb;
        pb.n = 10;
        pb.adj.assign(pb.n, std::vector<bool>(pb.n, false));
        std::uniform_real_distribution<double> wdist(0.1, 5.0);
        std::bernoulli_distribution edge(0.45);
        for (int i = 0; i < pb.n; ++i)
            pb.weight.push_back(wdist(rng));
        for (int i = 0; i < pb.n; ++i)
            for (int j = i + 1; j < pb.n; ++j)
                if (edge(rng))
                    pb.adj[i][j] = pb.adj[j][i] = true;

        // Brute force over all subsets.
        double best = 0.0;
        for (int mask = 0; mask < (1 << pb.n); ++mask) {
            double w = 0.0;
            bool ok = true;
            for (int i = 0; i < pb.n && ok; ++i) {
                if (!(mask >> i & 1))
                    continue;
                w += pb.weight[i];
                for (int j = i + 1; j < pb.n; ++j)
                    if ((mask >> j & 1) && !pb.adj[i][j])
                        ok = false;
            }
            if (ok)
                best = std::max(best, w);
        }
        const auto result = maxWeightClique(pb);
        EXPECT_NEAR(result.weight, best, 1e-9) << "trial " << trial;
    }
}

TEST(MergeTest, SelfMergeIsFree) {
    const auto &tech = model::defaultTech();
    const Datapath dp = datapathFromPattern(macPattern());
    const MergeResult mr = mergeDatapaths(dp, dp, tech);
    EXPECT_TRUE(mr.merged.validate());
    // Merging a pattern with itself must not grow the datapath.
    EXPECT_DOUBLE_EQ(mr.merged.functionalArea(tech),
                     dp.functionalArea(tech));
    EXPECT_EQ(mr.merged.nodes.size(), dp.nodes.size());
}

TEST(MergeTest, MergedAreaNeverExceedsSum) {
    const auto &tech = model::defaultTech();
    const std::vector<Graph> patterns = {macPattern(),
                                         addChainPattern(),
                                         subShiftPattern()};
    for (std::size_t i = 0; i < patterns.size(); ++i) {
        for (std::size_t j = 0; j < patterns.size(); ++j) {
            const Datapath a = datapathFromPattern(patterns[i]);
            const Datapath b = datapathFromPattern(patterns[j]);
            const MergeResult mr = mergeDatapaths(a, b, tech);
            std::string error;
            EXPECT_TRUE(mr.merged.validate(&error)) << error;
            EXPECT_LE(mr.merged.functionalArea(tech),
                      a.functionalArea(tech) +
                          b.functionalArea(tech) + 1e-9)
                << "merging " << i << " with " << j;
        }
    }
}

TEST(MergeTest, SharedAdderBetweenMacAndAddChain) {
    const auto &tech = model::defaultTech();
    const Datapath a = datapathFromPattern(macPattern());
    const Datapath b = datapathFromPattern(addChainPattern());
    const MergeResult mr = mergeDatapaths(a, b, tech);

    // mac has 1 add; chain has 2 adds.  One add and the const must be
    // shared: total adders == 2, consts == 1, muls == 1.
    int adders = 0, consts = 0, muls = 0;
    for (const DpNode &n : mr.merged.nodes) {
        if (n.kind == DpNodeKind::kConst)
            ++consts;
        if (n.kind != DpNodeKind::kBlock)
            continue;
        adders += n.cls == model::HwBlockClass::kAddSub;
        muls += n.cls == model::HwBlockClass::kMul;
    }
    EXPECT_EQ(adders, 2);
    EXPECT_EQ(consts, 1);
    EXPECT_EQ(muls, 1);
    EXPECT_GT(mr.saved_area, 0.0);
}

/** Check that a source pattern is fully embedded in the merged
 * datapath through its node map. */
void
expectEmbedded(const Graph &pattern, const std::vector<int> &map,
               const Datapath &merged)
{
    for (ir::NodeId id = 0; id < pattern.size(); ++id) {
        const ir::Node &n = pattern.node(id);
        const int m = map[id];
        ASSERT_GE(m, 0);
        ASSERT_LT(m, static_cast<int>(merged.nodes.size()));
        if (ir::opIsCompute(n.op)) {
            EXPECT_TRUE(merged.nodes[m].ops.count(n.op))
                << "merged node lost op " << ir::opName(n.op);
            for (int p = 0; p < static_cast<int>(n.operands.size());
                 ++p) {
                const int src = map[n.operands[p]];
                const auto sources = merged.sourcesOf(m, p);
                EXPECT_TRUE(std::find(sources.begin(), sources.end(),
                                      src) != sources.end())
                    << "pattern edge lost in merge";
            }
        }
    }
}

TEST(MergeTest, EverySourcePatternRemainsExecutable) {
    const auto &tech = model::defaultTech();
    const std::vector<Graph> patterns = {macPattern(),
                                         addChainPattern(),
                                         subShiftPattern()};
    const MultiMergeResult mr = mergePatterns(patterns, tech);
    ASSERT_TRUE(mr.merged.validate());
    ASSERT_EQ(mr.pattern_maps.size(), patterns.size());
    for (std::size_t k = 0; k < patterns.size(); ++k)
        expectEmbedded(patterns[k], mr.pattern_maps[k], mr.merged);
}

TEST(MergeTest, MuxAppearsOnConflictingPorts) {
    // Fig. 5 flavour: two patterns whose adds receive different
    // sources on port 0 -> the merged add needs a mux there.
    GraphBuilder b1; // add(mul(x, y), z)
    b1.add(b1.mul(b1.input(), b1.input()), b1.input());
    GraphBuilder b2; // add(sub(x, y), z)
    b2.add(b2.sub(b2.input(), b2.input()), b2.input());

    const auto &tech = model::defaultTech();
    const MultiMergeResult mr =
        mergePatterns({b1.take(), b2.take()}, tech);

    bool found_mux = false;
    for (int id = 0; id < static_cast<int>(mr.merged.nodes.size());
         ++id) {
        const DpNode &n = mr.merged.nodes[id];
        if (n.kind != DpNodeKind::kBlock)
            continue;
        for (int p = 0; p < n.arity(); ++p)
            found_mux |= mr.merged.sourcesOf(id, p).size() > 1;
    }
    EXPECT_TRUE(found_mux);
}

TEST(MergeTest, BitTypedSelectPatternsMerge) {
    // Two compare-and-select patterns: cmp/sel blocks and the bit
    // edge between them must merge into one of each.
    GraphBuilder b1; // sel(slt(x, y), x, y)  == smin
    {
        Value x = b1.input(), y = b1.input();
        b1.select(b1.slt(x, y), x, y);
    }
    GraphBuilder b2; // sel(ugt(x, y), x, y)  == umax
    {
        Value x = b2.input(), y = b2.input();
        b2.select(b2.ugt(x, y), x, y);
    }
    const auto &tech = model::defaultTech();
    const Graph g1 = b1.take(), g2 = b2.take();
    const MultiMergeResult mr = mergePatterns({g1, g2}, tech);
    ASSERT_TRUE(mr.merged.validate());

    int cmps = 0, sels = 0;
    for (const DpNode &n : mr.merged.nodes) {
        if (n.kind != DpNodeKind::kBlock)
            continue;
        cmps += n.cls == model::HwBlockClass::kCompare;
        sels += n.cls == model::HwBlockClass::kSelect;
    }
    EXPECT_EQ(cmps, 1) << "slt and ugt share the comparator";
    EXPECT_EQ(sels, 1);
    expectEmbedded(g1, mr.pattern_maps[0], mr.merged);
    expectEmbedded(g2, mr.pattern_maps[1], mr.merged);
}

TEST(MergeTest, EmptyAndSingletonInputs) {
    const auto &tech = model::defaultTech();
    EXPECT_TRUE(mergePatterns({}, tech).merged.nodes.empty());

    const Datapath dp = datapathFromPattern(macPattern());
    const auto one = mergePatterns({macPattern()}, tech);
    EXPECT_EQ(one.merged.nodes.size(), dp.nodes.size());
    EXPECT_DOUBLE_EQ(one.saved_area, 0.0);
}

TEST(MergeTest, UnaryAndBinarySameClassMerge) {
    // abs (arity 1) and min (arity 2) share the minmax unit; the
    // merged block must keep both executable.
    GraphBuilder b1;
    b1.abs(b1.input());
    GraphBuilder b2;
    b2.min(b2.input(), b2.input());
    const auto &tech = model::defaultTech();
    const Graph g1 = b1.take(), g2 = b2.take();
    const MultiMergeResult mr = mergePatterns({g1, g2}, tech);
    ASSERT_TRUE(mr.merged.validate());
    int minmax_blocks = 0;
    for (const DpNode &n : mr.merged.nodes) {
        if (n.kind == DpNodeKind::kBlock &&
            n.cls == model::HwBlockClass::kMinMax) {
            ++minmax_blocks;
            EXPECT_TRUE(n.ops.count(Op::kAbs));
            EXPECT_TRUE(n.ops.count(Op::kMin));
            EXPECT_EQ(n.arity(), 2);
        }
    }
    EXPECT_EQ(minmax_blocks, 1);
}

TEST(MergeTest, SeededMergeKeepsSeedStructure) {
    const auto &tech = model::defaultTech();
    const Datapath seed = datapathFromPattern(addChainPattern());
    std::vector<int> seed_map;
    const MultiMergeResult mr = mergeIntoDatapath(
        seed, {macPattern()}, tech, &seed_map);
    ASSERT_EQ(seed_map.size(), seed.nodes.size());
    for (std::size_t i = 0; i < seed.nodes.size(); ++i) {
        const DpNode &before = seed.nodes[i];
        const DpNode &after = mr.merged.nodes[seed_map[i]];
        EXPECT_EQ(before.kind, after.kind);
        if (before.kind == DpNodeKind::kBlock) {
            EXPECT_EQ(before.cls, after.cls);
            for (Op op : before.ops)
                EXPECT_TRUE(after.ops.count(op));
        }
    }
}

TEST(MergeTest, PortOrderPreservedForNonCommutative) {
    // sub(x, y) and sub(y, x) shapes: the two subs can merge as nodes,
    // but their edges at swapped ports must not merge into one wire.
    GraphBuilder b1;
    Value x1 = b1.input(), y1 = b1.input();
    b1.lshr(b1.sub(x1, y1), y1);
    GraphBuilder b2;
    Value x2 = b2.input(), y2 = b2.input();
    b2.lshr(b2.sub(y2, x2), y2);

    const auto &tech = model::defaultTech();
    const Graph g1 = b1.take(), g2 = b2.take();
    const MultiMergeResult mr = mergePatterns({g1, g2}, tech);
    EXPECT_TRUE(mr.merged.validate());
    expectEmbedded(g1, mr.pattern_maps[0], mr.merged);
    expectEmbedded(g2, mr.pattern_maps[1], mr.merged);
}

} // namespace
} // namespace apex::merging
