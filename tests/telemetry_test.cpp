/**
 * Tests for the telemetry layer: RAII spans + thread-local rings +
 * Chrome-trace export, and the unified metrics registry (counters,
 * gauges, fixed-bucket histograms, stable JSON dump).
 *
 * The registry and the tracing globals are process-wide, so every
 * test works with deltas (snapshot before, compare after) or with
 * uniquely named metrics, and tracing tests reset the collected
 * event store up front.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "runtime/eventlog.hpp"
#include "runtime/telemetry.hpp"

namespace eventlog = apex::eventlog;

namespace {

using namespace apex::telemetry;

/** Enable tracing for one test; restores "off" and clears the event
 * store on exit so tests compose in any order. */
class TracingScope {
  public:
    TracingScope()
    {
        resetTracingForTesting();
        setTracingEnabled(true);
    }
    ~TracingScope()
    {
        setTracingEnabled(false);
        resetTracingForTesting();
    }
};

/** Collected events named @p name (collect() first). */
std::vector<SpanEvent>
eventsNamed(const std::string &name)
{
    collect();
    std::vector<SpanEvent> out;
    for (const SpanEvent &ev : events())
        if (ev.name == name)
            out.push_back(ev);
    return out;
}

TEST(Span, RecordsNameArgsAndDuration)
{
    TracingScope tracing;
    {
        APEX_SPAN("t.record", {{"app", "camera"}, {"level", 2}});
    }
    const auto evs = eventsNamed("t.record");
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].depth, 0);
    EXPECT_GE(evs[0].dur_us, 0.0);
    EXPECT_NE(evs[0].args.find("\"app\":\"camera\""),
              std::string::npos);
    EXPECT_NE(evs[0].args.find("\"level\":2"), std::string::npos);
}

TEST(Span, NestingRecordsDepthAndContainment)
{
    TracingScope tracing;
    {
        APEX_SPAN("t.outer");
        {
            APEX_SPAN("t.inner");
        }
    }
    const auto outer = eventsNamed("t.outer");
    const auto inner = eventsNamed("t.inner");
    ASSERT_EQ(outer.size(), 1u);
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_EQ(outer[0].depth, 0);
    EXPECT_EQ(inner[0].depth, 1);
    // The child interval lies inside the parent interval.
    EXPECT_LE(outer[0].ts_us, inner[0].ts_us);
    EXPECT_GE(outer[0].ts_us + outer[0].dur_us,
              inner[0].ts_us + inner[0].dur_us);
}

TEST(Span, ScopedCellTagsSpansAndRestoresPrevious)
{
    TracingScope tracing;
    {
        ScopedCell outer_cell;
        outer_cell.set("camera/pe1");
        {
            APEX_SPAN("t.tagged");
        }
        {
            ScopedCell inner_cell;
            inner_cell.set("camera/pe4");
            APEX_SPAN("t.retagged");
        }
        {
            APEX_SPAN("t.tagged_again");
        }
    }
    EXPECT_EQ(eventsNamed("t.tagged").at(0).scope, "camera/pe1");
    EXPECT_EQ(eventsNamed("t.retagged").at(0).scope, "camera/pe4");
    // The inner ScopedCell restored the outer cell, not "".
    EXPECT_EQ(eventsNamed("t.tagged_again").at(0).scope,
              "camera/pe1");
}

TEST(Span, LaneAttributionFollowsSetLane)
{
    TracingScope tracing;
    std::thread worker([] {
        setLane(7);
        {
            APEX_SPAN("t.lane");
        }
        setLane(-1);
    });
    worker.join();
    const auto evs = eventsNamed("t.lane");
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].lane, 7);
}

TEST(Span, DisabledPathRecordsNothingAndSkipsArgs)
{
    resetTracingForTesting();
    setTracingEnabled(false);
    const long long before = spansRecorded();
    int arg_evals = 0;
    auto expensive = [&arg_evals] {
        ++arg_evals;
        return std::string("value");
    };
    for (int i = 0; i < 100; ++i) {
        APEX_SPAN("t.disabled", {{"k", expensive()}});
    }
    EXPECT_EQ(spansRecorded(), before);
    // APEX_SPAN must not evaluate its argument list when disabled.
    EXPECT_EQ(arg_evals, 0);
    collect();
    EXPECT_TRUE(eventsNamed("t.disabled").empty());
}

TEST(Span, RingWrapDropsInsteadOfBlocking)
{
    TracingScope tracing;
    setRingCapacityForTesting(4);
    const long long dropped_before = droppedEvents();
    // A fresh thread gets the tiny ring; nobody drains it while the
    // thread floods it, so everything past the capacity is dropped.
    std::thread producer([] {
        for (int i = 0; i < 10; ++i) {
            APEX_SPAN("t.wrap", {{"i", i}});
        }
    });
    producer.join();
    setRingCapacityForTesting(16384); // restore the default
    const auto evs = eventsNamed("t.wrap");
    EXPECT_EQ(evs.size(), 4u);
    EXPECT_EQ(droppedEvents() - dropped_before, 6);
}

TEST(ChromeTrace, EmitsValidEnvelopeAndEvents)
{
    TracingScope tracing;
    std::thread worker([] {
        setLane(0);
        {
            APEX_SPAN("t.traced", {{"app", "quote\"backslash\\"}});
        }
        setLane(-1);
    });
    worker.join();
    const std::string json = chromeTraceJson();
    // Envelope.
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // Lane metadata + the complete event with escaped args.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"lane 0\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"t.traced\""), std::string::npos);
    EXPECT_NE(json.find("quote\\\"backslash\\\\"),
              std::string::npos);
    // No raw control characters survive escaping.
    for (char c : json)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(Metrics, CounterAccumulatesAndIsStableByName)
{
    Counter &c = counter("test.telemetry.counter");
    const long long before = c.value();
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), before + 42);
    // Same name, same object.
    EXPECT_EQ(&counter("test.telemetry.counter"), &c);
}

TEST(Metrics, GaugeIsLastWriteWins)
{
    Gauge &g = gauge("test.telemetry.gauge");
    g.set(2.5);
    g.set(-1.25);
    EXPECT_EQ(g.value(), -1.25);
}

TEST(Metrics, HistogramBucketsBoundsAndOverflow)
{
    Histogram &h = Registry::instance().histogram(
        "test.telemetry.hist", {1.0, 10.0, 100.0});
    ASSERT_EQ(h.bounds().size(), 3u);
    h.observe(0.5);   // <= 1        -> bucket 0
    h.observe(1.0);   // boundary    -> bucket 0
    h.observe(7.0);   // <= 10       -> bucket 1
    h.observe(99.0);  // <= 100      -> bucket 2
    h.observe(500.0); // > last      -> overflow bucket
    EXPECT_EQ(h.bucketCount(0), 2);
    EXPECT_EQ(h.bucketCount(1), 1);
    EXPECT_EQ(h.bucketCount(2), 1);
    EXPECT_EQ(h.bucketCount(3), 1); // overflow
    EXPECT_EQ(h.count(), 5);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7.0 + 99.0 + 500.0);
}

TEST(Metrics, JsonDumpIsStableSortedAndWellFormed)
{
    counter("test.dump.zeta").add(3);
    counter("test.dump.alpha").add(1);
    gauge("test.dump.gauge").set(1.5);
    Registry::instance().histogram("test.dump.hist", {1.0, 2.0})
        .observe(1.5);
    const std::string dump = Registry::instance().jsonDump();
    // Envelope and sections.
    EXPECT_EQ(dump.front(), '{');
    EXPECT_EQ(dump.back(), '}');
    EXPECT_NE(dump.find("\"apex_metrics\":1"), std::string::npos);
    EXPECT_NE(dump.find("\"counters\":["), std::string::npos);
    EXPECT_NE(dump.find("\"gauges\":["), std::string::npos);
    EXPECT_NE(dump.find("\"histograms\":["), std::string::npos);
    // Name-sorted within a section.
    EXPECT_LT(dump.find("test.dump.alpha"),
              dump.find("test.dump.zeta"));
    // Histogram rows carry bounds/counts/sum/count.
    EXPECT_NE(dump.find("\"bounds\":[1,2]"), std::string::npos);
    EXPECT_NE(dump.find("\"counts\":["), std::string::npos);
    EXPECT_NE(dump.find("\"sum\":1.5"), std::string::npos);
    // Dumping is repeatable byte-for-byte when nothing changed.
    EXPECT_EQ(dump, Registry::instance().jsonDump());
}

TEST(Metrics, StageTimerObservesOnScopeExit)
{
    Histogram &h =
        Registry::instance().histogram("test.timer.ms", {1e9});
    const long long before = h.count();
    {
        StageTimer timer(h);
    }
    EXPECT_EQ(h.count(), before + 1);
}

TEST(Metrics, PeriodicWriterFlushesAtomicallyAndOnShutdown)
{
    const std::string path =
        testing::TempDir() + "apex_periodic_metrics.json";
    Counter &c = counter("test.periodic.flushes");
    {
        PeriodicMetricsWriter writer(path, 5.0);
        c.add(1);
        ASSERT_TRUE(writer.flushNow());
        EXPECT_GE(writer.flushCount(), 1);
        c.add(1); // Mutation after the last explicit flush ...
    } // ... is captured by the destructor's final flush.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("test.periodic.flushes"),
              std::string::npos);
    // The temp file never survives a completed flush.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
}

/** Slurp a file's bytes, or "" when it does not exist. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Metrics, PeriodicWriterKeepsLastGoodFileAcrossFlushFailure)
{
    const std::string path =
        testing::TempDir() + "apex_metrics_flush_failure.json";
    std::filesystem::remove(path);
    Counter &failures =
        counter("apex.resource.metrics_flush_failures");
    const long long failures_before = failures.value();

    PeriodicMetricsWriter writer(path, 1e9);
    ASSERT_TRUE(writer.flushNow());
    const long long flushes_before = writer.flushCount();
    const std::string good = slurp(path);
    ASSERT_FALSE(good.empty());

    {
        apex::FaultScope fault(apex::FaultStage::kDiskFull, 1);
        EXPECT_FALSE(writer.flushNow());
    }
    // The failure is counted, the flush count is honest, and — the
    // durability contract — the previous good file is untouched:
    // observers keep reading the last complete snapshot.
    EXPECT_EQ(failures.value(), failures_before + 1);
    EXPECT_EQ(writer.flushCount(), flushes_before);
    EXPECT_EQ(slurp(path), good);
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());

    // When the disk recovers, the next flush succeeds on its own.
    EXPECT_TRUE(writer.flushNow());
    EXPECT_EQ(writer.flushCount(), flushes_before + 1);
}

TEST(Metrics, PeriodicWriterSurvivesUncreatableTmpFile)
{
    // The metrics "directory" is a regular file, so creating the tmp
    // file fails with ENOTDIR (works even when running as root,
    // unlike permission-based setups).
    const std::string blocker =
        testing::TempDir() + "apex_metrics_blocker";
    {
        std::ofstream os(blocker, std::ios::trunc);
        os << "not a directory\n";
    }
    Counter &failures =
        counter("apex.resource.metrics_flush_failures");
    const long long failures_before = failures.value();
    {
        PeriodicMetricsWriter writer(blocker + "/metrics.json", 1e9);
        EXPECT_FALSE(writer.flushNow());
        // The destructor's final flush fails too; it must not crash.
    }
    EXPECT_GE(failures.value(), failures_before + 2);
    std::filesystem::remove(blocker);
}

TEST(Metrics, PeriodicWriterSurvivesRenameFailure)
{
    // The target path is an existing directory: the tmp file writes
    // fine but the publishing rename fails.
    const std::string path =
        testing::TempDir() + "apex_metrics_renameblock";
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    Counter &failures =
        counter("apex.resource.metrics_flush_failures");
    const long long failures_before = failures.value();
    {
        PeriodicMetricsWriter writer(path, 1e9);
        EXPECT_FALSE(writer.flushNow());
        // No orphaned tmp file is left behind on the rename path.
        std::ifstream tmp(path + ".tmp");
        EXPECT_FALSE(tmp.good());
    }
    EXPECT_GE(failures.value(), failures_before + 1);
    std::filesystem::remove_all(path);
}

TEST(Metrics, SpanMacroLeavesRegistryAlone)
{
    // Spans and metrics are independent facilities: tracing state
    // must not create or mutate registry entries.
    TracingScope tracing;
    const std::string before = Registry::instance().jsonDump();
    {
        APEX_SPAN("t.registry_untouched");
    }
    collect();
    EXPECT_EQ(Registry::instance().jsonDump(), before);
}

// --------------------------------------------------------------------
// Request trace context
// --------------------------------------------------------------------

TEST(TraceId, ScopedSetRestoresOnUnwindAndNests)
{
    EXPECT_EQ(currentTraceId(), 0u);
    {
        ScopedTraceId outer;
        outer.set(7);
        EXPECT_EQ(currentTraceId(), 7u);
        {
            ScopedTraceId inner;
            inner.set(9);
            EXPECT_EQ(currentTraceId(), 9u);
            inner.set(11); // Re-arming keeps the original restore.
            EXPECT_EQ(currentTraceId(), 11u);
        }
        EXPECT_EQ(currentTraceId(), 7u);
    }
    EXPECT_EQ(currentTraceId(), 0u);
}

TEST(TraceId, SpansCarryTheThreadTraceIdAndFilter)
{
    TracingScope tracing;
    {
        ScopedTraceId trace;
        trace.set(0xfe);
        APEX_SPAN("t.traced_req");
    }
    {
        ScopedTraceId trace;
        trace.set(0xff);
        APEX_SPAN("t.other_req");
    }
    {
        APEX_SPAN("t.unscoped");
    }
    EXPECT_EQ(eventsNamed("t.traced_req").at(0).trace_id, 0xfeu);
    EXPECT_EQ(eventsNamed("t.unscoped").at(0).trace_id, 0u);

    const auto slice = eventsForTrace(0xfe);
    ASSERT_EQ(slice.size(), 1u);
    EXPECT_EQ(slice[0].name, "t.traced_req");
    EXPECT_TRUE(eventsForTrace(0xdead).empty());
}

TEST(TraceId, SetThreadTraceIdTagsAForeignThread)
{
    TracingScope tracing;
    // The forked-worker path: a thread that never unwinds installs
    // the id without RAII restoration.
    std::thread worker([] {
        setThreadTraceId(0x42);
        APEX_SPAN("t.worker_req");
    });
    worker.join();
    EXPECT_EQ(eventsNamed("t.worker_req").at(0).trace_id, 0x42u);
    EXPECT_EQ(currentTraceId(), 0u); // Only that thread was tagged.
}

TEST(TraceId, RingDropsBumpTheTraceDroppedCounter)
{
    TracingScope tracing;
    setRingCapacityForTesting(4);
    Counter &dropped = counter("apex.trace.dropped");
    const long long counter_before = dropped.value();
    const long long dropped_before = droppedEvents();
    std::thread producer([] {
        for (int i = 0; i < 10; ++i) {
            APEX_SPAN("t.drop_count", {{"i", i}});
        }
    });
    producer.join();
    setRingCapacityForTesting(16384); // restore the default
    // Span loss is surfaced as a metric, not only via the tracing
    // API, so a metrics dump alone reveals a truncated trace.
    EXPECT_EQ(droppedEvents() - dropped_before, 6);
    EXPECT_EQ(dropped.value() - counter_before, 6);
}

TEST(TraceId, CollectedCapEvictsOldestAndCounts)
{
    TracingScope tracing;
    setCollectedCap(10);
    const long long evicted_before = evictedEvents();
    for (int i = 0; i < 25; ++i) {
        APEX_SPAN("t.evict", {{"i", i}});
        collect(); // Drain each span so the ring never drops.
    }
    collect();
    EXPECT_LE(events().size(), 10u);
    EXPECT_GE(evictedEvents() - evicted_before, 15);
    // The survivors are the newest events, not the oldest.
    bool saw_last = false;
    for (const SpanEvent &ev : events())
        saw_last |= ev.args.find("\"i\":24") != std::string::npos;
    EXPECT_TRUE(saw_last);
    setCollectedCap(131072); // restore the default
}

TEST(ChromeTrace, MergedSlicesRenderOneLanePerProcess)
{
    // Pure-function check: hand-built slices, no ring involvement.
    SpanEvent client_ev;
    client_ev.name = "client.sweep";
    client_ev.ts_us = 1000.0;
    client_ev.dur_us = 50.0;
    client_ev.trace_id = 0xfe;

    SpanEvent daemon_ev = client_ev;
    daemon_ev.name = "service.execute";
    daemon_ev.ts_us = 2000.0;

    SpanEvent worker_ev = client_ev;
    worker_ev.name = "pe.evaluate";
    worker_ev.ts_us = 3000.0;
    worker_ev.lane = 1;

    std::vector<TraceProcessSlice> slices(3);
    slices[0].pid = 1;
    slices[0].process_name = "client";
    slices[0].events.push_back(client_ev);
    slices[1].pid = 2;
    slices[1].process_name = "apexd";
    slices[1].events.push_back(daemon_ev);
    slices[1].dropped = 3;
    slices[2].pid = 3;
    slices[2].process_name = "apexd workers";
    slices[2].events.push_back(worker_ev);

    const std::string json = chromeTraceJsonMerged(slices);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    // One process_name metadata lane per slice.
    EXPECT_NE(json.find("\"name\":\"process_name\",\"args\":"
                        "{\"name\":\"client\"}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"apexd\"}"), std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"apexd workers\"}"),
              std::string::npos);
    // Events land under their slice's pid; the worker event under a
    // "worker 1" thread-name lane.
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"worker 1\""), std::string::npos);
    // Trace-id correlation is visible in the event args.
    EXPECT_NE(json.find("\"trace_id\":\"00000000000000fe\""),
              std::string::npos);
    // Each slice is rebased to its own first event (ts 0).
    EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
    // Span loss is per-process metadata, not silence.
    EXPECT_NE(json.find("\"otherData\":{\"dropped\":{\"client\":0,"
                        "\"apexd\":3,\"apexd workers\":0}}"),
              std::string::npos);
}

TEST(ChromeTrace, SingleProcessJsonReportsLossCounters)
{
    TracingScope tracing;
    {
        APEX_SPAN("t.loss_meta");
    }
    const std::string json = chromeTraceJson();
    EXPECT_NE(json.find("\"otherData\":{\"recorded\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"dropped\":"), std::string::npos);
    EXPECT_NE(json.find("\"evicted\":"), std::string::npos);
}

// --------------------------------------------------------------------
// Structured event log
// --------------------------------------------------------------------

/** Read @p path as whole lines. */
std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream is(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

TEST(EventLog, ParseLevelAcceptsTheDocumentedNames)
{
    eventlog::Level level;
    ASSERT_TRUE(eventlog::parseLevel("debug", &level));
    EXPECT_EQ(level, eventlog::Level::kDebug);
    ASSERT_TRUE(eventlog::parseLevel("info", &level));
    EXPECT_EQ(level, eventlog::Level::kInfo);
    ASSERT_TRUE(eventlog::parseLevel("warn", &level));
    EXPECT_EQ(level, eventlog::Level::kWarn);
    ASSERT_TRUE(eventlog::parseLevel("warning", &level));
    EXPECT_EQ(level, eventlog::Level::kWarn);
    ASSERT_TRUE(eventlog::parseLevel("error", &level));
    EXPECT_EQ(level, eventlog::Level::kError);
    EXPECT_FALSE(eventlog::parseLevel("chatty", &level));
    EXPECT_STREQ(eventlog::levelName(eventlog::Level::kWarn),
                 "warn");
}

TEST(EventLog, WritesLeveledJsonlWithTraceCorrelation)
{
    const std::string path =
        ::testing::TempDir() + "apex_eventlog_test.jsonl";
    std::filesystem::remove(path);

    eventlog::Options options;
    options.path = path;
    options.level = eventlog::Level::kWarn;
    ASSERT_TRUE(eventlog::configure(options));
    EXPECT_TRUE(eventlog::configured());

    eventlog::emit(eventlog::Level::kInfo, "cache",
                   "below threshold; dropped at the call site");
    eventlog::emit(eventlog::Level::kWarn, "service.admission",
                   "queue saturated (depth 8)", 0xfe);
    eventlog::emit(eventlog::Level::kError, "service.accept",
                   "a \"quoted\" reason\nwith a newline");
    eventlog::shutdown();
    EXPECT_FALSE(eventlog::configured());

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].find("{\"ts_ms\":"), 0u);
    EXPECT_NE(lines[0].find("\"level\":\"warn\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"component\":\"service.admission\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"trace_id\":\"00000000000000fe\""),
              std::string::npos);
    // trace_id 0 means "no request context" and is omitted.
    EXPECT_EQ(lines[1].find("trace_id"), std::string::npos);
    // JSON stays one parseable line per event under hostile content.
    EXPECT_NE(lines[1].find("a \\\"quoted\\\" reason\\nwith"),
              std::string::npos);
    std::filesystem::remove(path);
}

TEST(EventLog, RateBoundSuppressesCountsAndSummarizes)
{
    const std::string path =
        ::testing::TempDir() + "apex_eventlog_rate_test.jsonl";
    std::filesystem::remove(path);

    eventlog::Options options;
    options.path = path;
    options.rate_window_ms = 50;
    options.rate_max_per_window = 2;
    ASSERT_TRUE(eventlog::configure(options));

    const long long suppressed_before = eventlog::suppressedLines();
    Counter &metric = counter("apex.log.suppressed");
    const long long metric_before = metric.value();
    for (int i = 0; i < 5; ++i)
        eventlog::emit(eventlog::Level::kInfo, "test",
                       "line " + std::to_string(i));
    EXPECT_EQ(eventlog::suppressedLines() - suppressed_before, 3);
    EXPECT_EQ(metric.value() - metric_before, 3);

    // Rolling the window emits one summary naming the loss, then
    // admits new lines again.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    eventlog::emit(eventlog::Level::kInfo, "test", "after the roll");
    eventlog::shutdown();

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 4u); // 2 admitted + summary + 1 admitted.
    EXPECT_NE(lines[0].find("line 0"), std::string::npos);
    EXPECT_NE(lines[1].find("line 1"), std::string::npos);
    EXPECT_NE(lines[2].find("\"component\":\"eventlog\""),
              std::string::npos);
    EXPECT_NE(lines[2].find("suppressed 3 line(s)"),
              std::string::npos);
    EXPECT_NE(lines[3].find("after the roll"), std::string::npos);
    std::filesystem::remove(path);
}

} // namespace
