/**
 * Tests for the telemetry layer: RAII spans + thread-local rings +
 * Chrome-trace export, and the unified metrics registry (counters,
 * gauges, fixed-bucket histograms, stable JSON dump).
 *
 * The registry and the tracing globals are process-wide, so every
 * test works with deltas (snapshot before, compare after) or with
 * uniquely named metrics, and tracing tests reset the collected
 * event store up front.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "runtime/telemetry.hpp"

namespace {

using namespace apex::telemetry;

/** Enable tracing for one test; restores "off" and clears the event
 * store on exit so tests compose in any order. */
class TracingScope {
  public:
    TracingScope()
    {
        resetTracingForTesting();
        setTracingEnabled(true);
    }
    ~TracingScope()
    {
        setTracingEnabled(false);
        resetTracingForTesting();
    }
};

/** Collected events named @p name (collect() first). */
std::vector<SpanEvent>
eventsNamed(const std::string &name)
{
    collect();
    std::vector<SpanEvent> out;
    for (const SpanEvent &ev : events())
        if (ev.name == name)
            out.push_back(ev);
    return out;
}

TEST(Span, RecordsNameArgsAndDuration)
{
    TracingScope tracing;
    {
        APEX_SPAN("t.record", {{"app", "camera"}, {"level", 2}});
    }
    const auto evs = eventsNamed("t.record");
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].depth, 0);
    EXPECT_GE(evs[0].dur_us, 0.0);
    EXPECT_NE(evs[0].args.find("\"app\":\"camera\""),
              std::string::npos);
    EXPECT_NE(evs[0].args.find("\"level\":2"), std::string::npos);
}

TEST(Span, NestingRecordsDepthAndContainment)
{
    TracingScope tracing;
    {
        APEX_SPAN("t.outer");
        {
            APEX_SPAN("t.inner");
        }
    }
    const auto outer = eventsNamed("t.outer");
    const auto inner = eventsNamed("t.inner");
    ASSERT_EQ(outer.size(), 1u);
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_EQ(outer[0].depth, 0);
    EXPECT_EQ(inner[0].depth, 1);
    // The child interval lies inside the parent interval.
    EXPECT_LE(outer[0].ts_us, inner[0].ts_us);
    EXPECT_GE(outer[0].ts_us + outer[0].dur_us,
              inner[0].ts_us + inner[0].dur_us);
}

TEST(Span, ScopedCellTagsSpansAndRestoresPrevious)
{
    TracingScope tracing;
    {
        ScopedCell outer_cell;
        outer_cell.set("camera/pe1");
        {
            APEX_SPAN("t.tagged");
        }
        {
            ScopedCell inner_cell;
            inner_cell.set("camera/pe4");
            APEX_SPAN("t.retagged");
        }
        {
            APEX_SPAN("t.tagged_again");
        }
    }
    EXPECT_EQ(eventsNamed("t.tagged").at(0).scope, "camera/pe1");
    EXPECT_EQ(eventsNamed("t.retagged").at(0).scope, "camera/pe4");
    // The inner ScopedCell restored the outer cell, not "".
    EXPECT_EQ(eventsNamed("t.tagged_again").at(0).scope,
              "camera/pe1");
}

TEST(Span, LaneAttributionFollowsSetLane)
{
    TracingScope tracing;
    std::thread worker([] {
        setLane(7);
        {
            APEX_SPAN("t.lane");
        }
        setLane(-1);
    });
    worker.join();
    const auto evs = eventsNamed("t.lane");
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].lane, 7);
}

TEST(Span, DisabledPathRecordsNothingAndSkipsArgs)
{
    resetTracingForTesting();
    setTracingEnabled(false);
    const long long before = spansRecorded();
    int arg_evals = 0;
    auto expensive = [&arg_evals] {
        ++arg_evals;
        return std::string("value");
    };
    for (int i = 0; i < 100; ++i) {
        APEX_SPAN("t.disabled", {{"k", expensive()}});
    }
    EXPECT_EQ(spansRecorded(), before);
    // APEX_SPAN must not evaluate its argument list when disabled.
    EXPECT_EQ(arg_evals, 0);
    collect();
    EXPECT_TRUE(eventsNamed("t.disabled").empty());
}

TEST(Span, RingWrapDropsInsteadOfBlocking)
{
    TracingScope tracing;
    setRingCapacityForTesting(4);
    const long long dropped_before = droppedEvents();
    // A fresh thread gets the tiny ring; nobody drains it while the
    // thread floods it, so everything past the capacity is dropped.
    std::thread producer([] {
        for (int i = 0; i < 10; ++i) {
            APEX_SPAN("t.wrap", {{"i", i}});
        }
    });
    producer.join();
    setRingCapacityForTesting(16384); // restore the default
    const auto evs = eventsNamed("t.wrap");
    EXPECT_EQ(evs.size(), 4u);
    EXPECT_EQ(droppedEvents() - dropped_before, 6);
}

TEST(ChromeTrace, EmitsValidEnvelopeAndEvents)
{
    TracingScope tracing;
    std::thread worker([] {
        setLane(0);
        {
            APEX_SPAN("t.traced", {{"app", "quote\"backslash\\"}});
        }
        setLane(-1);
    });
    worker.join();
    const std::string json = chromeTraceJson();
    // Envelope.
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // Lane metadata + the complete event with escaped args.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"lane 0\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"t.traced\""), std::string::npos);
    EXPECT_NE(json.find("quote\\\"backslash\\\\"),
              std::string::npos);
    // No raw control characters survive escaping.
    for (char c : json)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(Metrics, CounterAccumulatesAndIsStableByName)
{
    Counter &c = counter("test.telemetry.counter");
    const long long before = c.value();
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), before + 42);
    // Same name, same object.
    EXPECT_EQ(&counter("test.telemetry.counter"), &c);
}

TEST(Metrics, GaugeIsLastWriteWins)
{
    Gauge &g = gauge("test.telemetry.gauge");
    g.set(2.5);
    g.set(-1.25);
    EXPECT_EQ(g.value(), -1.25);
}

TEST(Metrics, HistogramBucketsBoundsAndOverflow)
{
    Histogram &h = Registry::instance().histogram(
        "test.telemetry.hist", {1.0, 10.0, 100.0});
    ASSERT_EQ(h.bounds().size(), 3u);
    h.observe(0.5);   // <= 1        -> bucket 0
    h.observe(1.0);   // boundary    -> bucket 0
    h.observe(7.0);   // <= 10       -> bucket 1
    h.observe(99.0);  // <= 100      -> bucket 2
    h.observe(500.0); // > last      -> overflow bucket
    EXPECT_EQ(h.bucketCount(0), 2);
    EXPECT_EQ(h.bucketCount(1), 1);
    EXPECT_EQ(h.bucketCount(2), 1);
    EXPECT_EQ(h.bucketCount(3), 1); // overflow
    EXPECT_EQ(h.count(), 5);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7.0 + 99.0 + 500.0);
}

TEST(Metrics, JsonDumpIsStableSortedAndWellFormed)
{
    counter("test.dump.zeta").add(3);
    counter("test.dump.alpha").add(1);
    gauge("test.dump.gauge").set(1.5);
    Registry::instance().histogram("test.dump.hist", {1.0, 2.0})
        .observe(1.5);
    const std::string dump = Registry::instance().jsonDump();
    // Envelope and sections.
    EXPECT_EQ(dump.front(), '{');
    EXPECT_EQ(dump.back(), '}');
    EXPECT_NE(dump.find("\"apex_metrics\":1"), std::string::npos);
    EXPECT_NE(dump.find("\"counters\":["), std::string::npos);
    EXPECT_NE(dump.find("\"gauges\":["), std::string::npos);
    EXPECT_NE(dump.find("\"histograms\":["), std::string::npos);
    // Name-sorted within a section.
    EXPECT_LT(dump.find("test.dump.alpha"),
              dump.find("test.dump.zeta"));
    // Histogram rows carry bounds/counts/sum/count.
    EXPECT_NE(dump.find("\"bounds\":[1,2]"), std::string::npos);
    EXPECT_NE(dump.find("\"counts\":["), std::string::npos);
    EXPECT_NE(dump.find("\"sum\":1.5"), std::string::npos);
    // Dumping is repeatable byte-for-byte when nothing changed.
    EXPECT_EQ(dump, Registry::instance().jsonDump());
}

TEST(Metrics, StageTimerObservesOnScopeExit)
{
    Histogram &h =
        Registry::instance().histogram("test.timer.ms", {1e9});
    const long long before = h.count();
    {
        StageTimer timer(h);
    }
    EXPECT_EQ(h.count(), before + 1);
}

TEST(Metrics, PeriodicWriterFlushesAtomicallyAndOnShutdown)
{
    const std::string path =
        testing::TempDir() + "apex_periodic_metrics.json";
    Counter &c = counter("test.periodic.flushes");
    {
        PeriodicMetricsWriter writer(path, 5.0);
        c.add(1);
        ASSERT_TRUE(writer.flushNow());
        EXPECT_GE(writer.flushCount(), 1);
        c.add(1); // Mutation after the last explicit flush ...
    } // ... is captured by the destructor's final flush.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("test.periodic.flushes"),
              std::string::npos);
    // The temp file never survives a completed flush.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
}

/** Slurp a file's bytes, or "" when it does not exist. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Metrics, PeriodicWriterKeepsLastGoodFileAcrossFlushFailure)
{
    const std::string path =
        testing::TempDir() + "apex_metrics_flush_failure.json";
    std::filesystem::remove(path);
    Counter &failures =
        counter("apex.resource.metrics_flush_failures");
    const long long failures_before = failures.value();

    PeriodicMetricsWriter writer(path, 1e9);
    ASSERT_TRUE(writer.flushNow());
    const long long flushes_before = writer.flushCount();
    const std::string good = slurp(path);
    ASSERT_FALSE(good.empty());

    {
        apex::FaultScope fault(apex::FaultStage::kDiskFull, 1);
        EXPECT_FALSE(writer.flushNow());
    }
    // The failure is counted, the flush count is honest, and — the
    // durability contract — the previous good file is untouched:
    // observers keep reading the last complete snapshot.
    EXPECT_EQ(failures.value(), failures_before + 1);
    EXPECT_EQ(writer.flushCount(), flushes_before);
    EXPECT_EQ(slurp(path), good);
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());

    // When the disk recovers, the next flush succeeds on its own.
    EXPECT_TRUE(writer.flushNow());
    EXPECT_EQ(writer.flushCount(), flushes_before + 1);
}

TEST(Metrics, PeriodicWriterSurvivesUncreatableTmpFile)
{
    // The metrics "directory" is a regular file, so creating the tmp
    // file fails with ENOTDIR (works even when running as root,
    // unlike permission-based setups).
    const std::string blocker =
        testing::TempDir() + "apex_metrics_blocker";
    {
        std::ofstream os(blocker, std::ios::trunc);
        os << "not a directory\n";
    }
    Counter &failures =
        counter("apex.resource.metrics_flush_failures");
    const long long failures_before = failures.value();
    {
        PeriodicMetricsWriter writer(blocker + "/metrics.json", 1e9);
        EXPECT_FALSE(writer.flushNow());
        // The destructor's final flush fails too; it must not crash.
    }
    EXPECT_GE(failures.value(), failures_before + 2);
    std::filesystem::remove(blocker);
}

TEST(Metrics, PeriodicWriterSurvivesRenameFailure)
{
    // The target path is an existing directory: the tmp file writes
    // fine but the publishing rename fails.
    const std::string path =
        testing::TempDir() + "apex_metrics_renameblock";
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    Counter &failures =
        counter("apex.resource.metrics_flush_failures");
    const long long failures_before = failures.value();
    {
        PeriodicMetricsWriter writer(path, 1e9);
        EXPECT_FALSE(writer.flushNow());
        // No orphaned tmp file is left behind on the rename path.
        std::ifstream tmp(path + ".tmp");
        EXPECT_FALSE(tmp.good());
    }
    EXPECT_GE(failures.value(), failures_before + 1);
    std::filesystem::remove_all(path);
}

TEST(Metrics, SpanMacroLeavesRegistryAlone)
{
    // Spans and metrics are independent facilities: tracing state
    // must not create or mutate registry entries.
    TracingScope tracing;
    const std::string before = Registry::instance().jsonDump();
    {
        APEX_SPAN("t.registry_untouched");
    }
    collect();
    EXPECT_EQ(Registry::instance().jsonDump(), before);
}

} // namespace
