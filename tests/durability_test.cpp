/**
 * Durability and pressure tests: the crash-safe sweep journal
 * (kill -9 mid-sweep, resume, byte-identical report), the framed
 * record log it is built on, the Deadline watchdog threaded through
 * the exponential stages, and graceful degradation when a cell's
 * budget runs out.
 */
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "core/deadline.hpp"
#include "core/evaluate.hpp"
#include "core/fault.hpp"
#include "core/journal.hpp"
#include "core/sweep.hpp"
#include "ir/builder.hpp"
#include "ir/signature.hpp"
#include "merging/clique.hpp"
#include "runtime/cache.hpp"
#include "runtime/record.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/telemetry.hpp"

namespace apex::core {
namespace {

namespace fs = std::filesystem;

const model::TechModel tech = model::defaultTech();

/** Unique scratch dir per test, removed on scope exit. */
class ScratchDir {
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                ("apex_durability_test_" + tag))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

std::vector<apps::AppInfo>
smallApps()
{
    return {apps::gaussianBlur(1), apps::unsharp(1)};
}

/**
 * Full byte-level projection of a sweep outcome: the summary, every
 * entry (with its exactly-serialized result) and the complete
 * diagnostics trail.  Two outcomes with equal bytes produced the
 * same report.
 */
std::string
outcomeBytes(const SweepOutcome &outcome)
{
    std::ostringstream os;
    os << outcome.report.summary() << '\n';
    os << "degraded " << outcome.report.degraded << '\n';
    for (const SweepEntry &e : outcome.entries)
        os << e.app << '/' << e.variant << '\n'
           << serializeEvalResult(e.result);
    os << outcome.report.diagnostics.toString();
    return os.str();
}

// --- Frame codec -------------------------------------------------------

TEST(FrameCodec, RoundTripsBinaryPayload)
{
    const std::string payload("bytes\nwith\nnewlines\0and nul", 27);
    const std::string frame =
        runtime::encodeFrame("apextest", 3, "blob", payload);
    std::istringstream is(frame);
    runtime::FramedRecord rec;
    ASSERT_EQ(runtime::readFrame(is, "apextest", 3, &rec),
              runtime::FrameStatus::kOk);
    EXPECT_EQ(rec.type, "blob");
    EXPECT_EQ(rec.payload, payload);
    EXPECT_EQ(runtime::readFrame(is, "apextest", 3, &rec),
              runtime::FrameStatus::kEof);
}

TEST(FrameCodec, VersionSkewIsDetectedBeforePayload)
{
    const std::string frame =
        runtime::encodeFrame("apextest", 1, "blob", "old payload");
    std::istringstream is(frame);
    runtime::FramedRecord rec;
    EXPECT_EQ(runtime::readFrame(is, "apextest", 2, &rec),
              runtime::FrameStatus::kVersionMismatch);
}

TEST(FrameCodec, TruncationAndBitRotAreCorrupt)
{
    const std::string frame =
        runtime::encodeFrame("apextest", 3, "blob", "payload bytes");
    {
        // A torn tail write: half the frame is missing.
        std::istringstream is(frame.substr(0, frame.size() / 2));
        runtime::FramedRecord rec;
        EXPECT_EQ(runtime::readFrame(is, "apextest", 3, &rec),
                  runtime::FrameStatus::kCorrupt);
    }
    {
        // One flipped payload byte: the checksum catches it.
        std::string rotted = frame;
        rotted[rotted.size() - 3] ^= 0x20;
        std::istringstream is(rotted);
        runtime::FramedRecord rec;
        EXPECT_EQ(runtime::readFrame(is, "apextest", 3, &rec),
                  runtime::FrameStatus::kCorrupt);
    }
}

// --- RecordLog ---------------------------------------------------------

TEST(RecordLog, AppendsSurviveReopen)
{
    ScratchDir dir("recordlog");
    const std::string path = dir.str() + "/log";
    {
        runtime::RecordLog log;
        ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
        EXPECT_EQ(log.recovery(), runtime::LogRecovery::kFresh);
        ASSERT_TRUE(log.append("a", "first").ok());
        ASSERT_TRUE(log.append("b", "second").ok());
    }
    runtime::RecordLog log;
    ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
    EXPECT_EQ(log.recovery(), runtime::LogRecovery::kClean);
    ASSERT_EQ(log.records().size(), 2u);
    EXPECT_EQ(log.records()[0].type, "a");
    EXPECT_EQ(log.records()[0].payload, "first");
    EXPECT_EQ(log.records()[1].payload, "second");
}

TEST(RecordLog, CorruptTailIsDroppedAndCompacted)
{
    ScratchDir dir("tailcrash");
    const std::string path = dir.str() + "/log";
    {
        runtime::RecordLog log;
        ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
        ASSERT_TRUE(log.append("a", "kept one").ok());
        ASSERT_TRUE(log.append("a", "kept two").ok());
    }
    {
        // A crash mid-append leaves a torn frame at the tail.
        std::ofstream os(path, std::ios::binary | std::ios::app);
        os << "apextest 1 a sum 0123";
    }
    {
        runtime::RecordLog log;
        ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
        EXPECT_EQ(log.recovery(),
                  runtime::LogRecovery::kTailDropped);
        ASSERT_EQ(log.records().size(), 2u);
        ASSERT_TRUE(log.append("a", "after recovery").ok());
    }
    // The compaction rewrote a clean file: the next open is clean.
    runtime::RecordLog log;
    ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
    EXPECT_EQ(log.recovery(), runtime::LogRecovery::kClean);
    ASSERT_EQ(log.records().size(), 3u);
    EXPECT_EQ(log.records()[2].payload, "after recovery");
}

TEST(RecordLog, MidFileCorruptionKeepsPrefixAndCountsTheDrop)
{
    ScratchDir dir("midfile");
    const std::string path = dir.str() + "/log";
    {
        runtime::RecordLog log;
        ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
        ASSERT_TRUE(log.append("a", "record one").ok());
        ASSERT_TRUE(log.append("a", "record two").ok());
        ASSERT_TRUE(log.append("a", "record three").ok());
    }
    // Flip one payload byte of the *middle* record — not the tail.
    // Replay must stop at the corruption point: everything after a
    // damaged frame is unframed bytes, so only the prefix is
    // trustworthy.
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        std::string all((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
        const std::size_t at = all.find("record two");
        ASSERT_NE(at, std::string::npos);
        f.seekp(static_cast<std::streamoff>(at + 3));
        f.put('X');
    }
    const long long drops_before =
        telemetry::counter("apex.record.tail_drops").value();
    runtime::RecordLog log;
    ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
    EXPECT_EQ(log.recovery(), runtime::LogRecovery::kTailDropped);
    ASSERT_EQ(log.records().size(), 1u);
    EXPECT_EQ(log.records()[0].payload, "record one");
    // The drop is observable in metrics, not just in the recovery
    // enum the caller may never look at.
    EXPECT_EQ(
        telemetry::counter("apex.record.tail_drops").value(),
        drops_before + 1);
}

TEST(RecordLog, HalfCompactedCrashStateRecovers)
{
    // Simulate a crash *between* a compaction's tmp write and its
    // rename: the real log still has its corrupt tail, and an orphan
    // tmp file sits next to it.  The next open must recover the
    // valid prefix and clean up the orphan — and never mistake the
    // orphan for the log.
    ScratchDir dir("halfcompact");
    const std::string path = dir.str() + "/log";
    {
        runtime::RecordLog log;
        ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
        ASSERT_TRUE(log.append("a", "durable").ok());
    }
    {
        std::ofstream os(path, std::ios::binary | std::ios::app);
        os << "apextest 1 a sum feed"; // torn tail
    }
    const std::string stale = path + ".tmp.12345";
    {
        std::ofstream os(stale, std::ios::binary);
        os << runtime::encodeFrame("apextest", 1, "a", "durable");
    }
    {
        runtime::RecordLog log;
        ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
        EXPECT_EQ(log.recovery(),
                  runtime::LogRecovery::kTailDropped);
        ASSERT_EQ(log.records().size(), 1u);
        EXPECT_EQ(log.records()[0].payload, "durable");
        EXPECT_FALSE(fs::exists(stale));
        ASSERT_TRUE(log.append("a", "after recovery").ok());
    }
    runtime::RecordLog log;
    ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
    EXPECT_EQ(log.recovery(), runtime::LogRecovery::kClean);
    EXPECT_EQ(log.records().size(), 2u);
}

TEST(RecordLog, SchemaMismatchRestartsFresh)
{
    ScratchDir dir("schema");
    const std::string path = dir.str() + "/log";
    {
        runtime::RecordLog log;
        ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
        ASSERT_TRUE(log.append("a", "v1 record").ok());
    }
    runtime::RecordLog log;
    ASSERT_TRUE(log.open(path, "apextest", 2, true).ok());
    EXPECT_EQ(log.recovery(),
              runtime::LogRecovery::kVersionMismatch);
    EXPECT_TRUE(log.records().empty());
}

// --- SweepJournal ------------------------------------------------------

TEST(SweepJournal, ReplaysAppAndCellRecords)
{
    ScratchDir dir("journal");
    SweepJournal::AppRecord app;
    app.app = 0;
    app.spec_failed = true;
    app.spec_name = "pe4_x";
    app.spec_status =
        Status(ErrorCode::kMiningFailed, "injected")
            .withContext("mining subgraphs");
    app.cells[0] = {true, "pe_base", 0, 0};
    app.cells[1] = {true, "pe1_x", 2, 1};

    SweepJournal::CellRecord ok_cell;
    ok_cell.app = 0;
    ok_cell.cell = 0;
    ok_cell.variant = "pe_base";
    ok_cell.result.success = true;
    ok_cell.result.pe_count = 7;
    ok_cell.result.pe_area = 0.1 + 0.2; // exact double round-trip
    ok_cell.result.diagnostics.info("place", "attempt trail", 2);

    SweepJournal::CellRecord bad_cell;
    bad_cell.app = 0;
    bad_cell.cell = 1;
    bad_cell.variant = "pe1_x";
    bad_cell.result.success = false;
    bad_cell.result.pnr_attempts = 4;
    bad_cell.result.status =
        Status(ErrorCode::kRouteFailed, "congestion on track 3")
            .withContext("routing 'x'")
            .withContext("evaluating 'x' on 'pe1_x'");
    bad_cell.result.error = bad_cell.result.status.toString();
    bad_cell.result.diagnostics.error("route",
                                      bad_cell.result.status, 4);

    {
        SweepJournal journal;
        ASSERT_TRUE(journal.open(dir.str(), 42, 2, false).ok());
        ASSERT_TRUE(journal.active());
        journal.appendApp(app);
        journal.appendCell(ok_cell);
        journal.appendCell(bad_cell);
    }

    SweepJournal journal;
    ASSERT_TRUE(journal.open(dir.str(), 42, 2, true).ok());
    EXPECT_EQ(journal.replayedCells(), 2);
    ASSERT_NE(journal.appRecord(0), nullptr);
    EXPECT_EQ(journal.appRecord(1), nullptr);
    const SweepJournal::AppRecord &a = *journal.appRecord(0);
    EXPECT_TRUE(a.spec_failed);
    EXPECT_EQ(a.spec_name, "pe4_x");
    EXPECT_EQ(a.spec_status.toString(), app.spec_status.toString());
    EXPECT_TRUE(a.cells[0].has_variant);
    EXPECT_EQ(a.cells[1].variant, "pe1_x");
    EXPECT_EQ(a.cells[1].non_optimal_merges, 2);
    EXPECT_EQ(a.cells[1].merge_timeouts, 1);
    EXPECT_FALSE(a.cells[2].has_variant);

    const SweepJournal::CellRecord *c0 = journal.cellRecord(0, 0);
    ASSERT_NE(c0, nullptr);
    EXPECT_TRUE(c0->result.success);
    EXPECT_EQ(c0->result.pe_count, 7);
    EXPECT_EQ(c0->result.pe_area, ok_cell.result.pe_area);
    EXPECT_EQ(c0->result.diagnostics.toString(),
              ok_cell.result.diagnostics.toString());

    const SweepJournal::CellRecord *c1 = journal.cellRecord(0, 1);
    ASSERT_NE(c1, nullptr);
    EXPECT_FALSE(c1->result.success);
    EXPECT_EQ(c1->result.pnr_attempts, 4);
    EXPECT_EQ(c1->result.status.toString(),
              bad_cell.result.status.toString());
    EXPECT_EQ(journal.cellRecord(0, 2), nullptr);
    EXPECT_EQ(journal.cellRecord(1, 0), nullptr);
}

TEST(SweepJournal, FingerprintMismatchStartsFresh)
{
    ScratchDir dir("fpmismatch");
    {
        SweepJournal journal;
        ASSERT_TRUE(journal.open(dir.str(), 1, 1, false).ok());
        SweepJournal::AppRecord app;
        app.app = 0;
        journal.appendApp(app);
    }
    // Same dir, different sweep configuration: nothing replays, and
    // the stale journal has been restarted.
    SweepJournal journal;
    ASSERT_TRUE(journal.open(dir.str(), 2, 1, true).ok());
    EXPECT_EQ(journal.appRecord(0), nullptr);
    EXPECT_EQ(journal.replayedCells(), 0);
}

// --- Deadline ----------------------------------------------------------

TEST(Deadline, BasicsAndComposition)
{
    const Deadline inf = Deadline::infinite();
    EXPECT_TRUE(inf.isInfinite());
    EXPECT_FALSE(inf.expired());
    EXPECT_TRUE(inf.check("anything").ok());

    const Deadline past = Deadline::after(-1.0);
    EXPECT_TRUE(past.expired());
    const Status s = past.check("the clique search");
    EXPECT_EQ(s.code(), ErrorCode::kTimeout);
    // The message must replay byte-identically from a journal, so it
    // carries no clock readings.
    EXPECT_EQ(s.message(),
              "deadline expired before the clique search");

    const Deadline future = Deadline::after(1e9);
    EXPECT_FALSE(future.expired());
    EXPECT_GT(future.remainingMs(), 0.0);
    EXPECT_TRUE(
        Deadline::earliest(inf, future).expired() == false);
    EXPECT_TRUE(Deadline::earliest(past, future).expired());
    EXPECT_TRUE(Deadline::earliest(inf, inf).isInfinite());
}

TEST(Deadline, ClockSkewFaultForcesExpiryDeterministically)
{
    const Deadline d = Deadline::after(1e9);
    FaultScope scope(FaultStage::kClockSkew, 2);
    EXPECT_FALSE(d.expired()); // poll 1: clock is honest
    EXPECT_TRUE(d.expired());  // poll 2: armed skew fires
    EXPECT_FALSE(d.expired()); // poll 3: honest again
    // Infinite deadlines never consult the clock at all.
    FaultScope again(FaultStage::kClockSkew, 1);
    EXPECT_FALSE(Deadline::infinite().expired());
}

TEST(Deadline, CliqueSearchDegradesToGreedyOnExpiry)
{
    merging::CliqueProblem pb;
    pb.n = 3;
    pb.weight = {3.0, 2.0, 1.0};
    pb.adj = {{false, true, true},
              {true, false, true},
              {true, true, false}};
    const merging::CliqueResult r =
        merging::maxWeightClique(pb, 1000, Deadline::after(-1.0));
    EXPECT_TRUE(r.timed_out);
    EXPECT_FALSE(r.optimal);
    // Degraded, not empty: the greedy seed is still a valid clique.
    EXPECT_EQ(r.vertices.size(), 3u);

    const merging::CliqueResult full = merging::maxWeightClique(pb);
    EXPECT_TRUE(full.optimal);
    EXPECT_FALSE(full.timed_out);
    EXPECT_EQ(full.weight, 6.0);
}

TEST(Deadline, CanonicalCodeTimesOutWithoutPartialResult)
{
    // Eight interchangeable adds over the same inputs: a worst-case
    // symmetric instance whose enumeration visits far more than one
    // deadline-poll stride.
    ir::GraphBuilder b;
    const ir::Value x = b.input("x");
    const ir::Value y = b.input("y");
    for (int i = 0; i < 8; ++i)
        b.output(b.add(x, y));
    const ir::Graph g = b.take();

    const auto timed =
        ir::tryCanonicalCode(g, Deadline::after(-1.0));
    ASSERT_FALSE(timed.ok());
    EXPECT_EQ(timed.status().code(), ErrorCode::kTimeout);

    // Unbounded, the same graph canonicalizes fine — and through both
    // entry points identically.
    const auto full = ir::tryCanonicalCode(g, Deadline::infinite());
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(*full, ir::canonicalCode(g));
}

TEST(Deadline, MinerStopsAtLevelBoundary)
{
    ExplorerOptions options;
    options.miner.deadline = Deadline::after(-1.0);
    const Explorer ex(tech, options);
    const auto mined =
        ex.tryAnalyze(apps::gaussianBlur(1).graph);
    ASSERT_FALSE(mined.ok());
    EXPECT_EQ(mined.status().code(), ErrorCode::kTimeout);
}

TEST(Deadline, TaskGraphSkipsUnstartedTasksAsTimeout)
{
    runtime::TaskGraph graph;
    graph.setDeadline(Deadline::after(-1.0));
    bool ran = false;
    graph.add("work", [&] {
        ran = true;
        return Status::okStatus();
    });
    const Status s = graph.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(s.code(), ErrorCode::kTimeout);
    EXPECT_EQ(graph.taskStatus(0).code(), ErrorCode::kTimeout);
}

TEST(Deadline, EvaluateReturnsTimeoutStatus)
{
    const auto app = apps::gaussianBlur(1);
    const Explorer ex(tech);
    EvalOptions options;
    options.deadline = Deadline::after(-1.0);
    const EvalResult r =
        evaluate(app, ex.baselineVariant(),
                 EvalLevel::kPostMapping, tech, options);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.status.code(), ErrorCode::kTimeout);
    EXPECT_FALSE(r.diagnostics.forStage("deadline").empty());
}

// --- Sweep durability --------------------------------------------------

TEST(Durability, ResumeAfterCleanRunReplaysEverything)
{
    ScratchDir dir("cleanresume");
    const auto apps_list = smallApps();
    const Explorer ex(tech);
    SweepOptions options;
    options.journal_dir = dir.str();

    const SweepOutcome first =
        runSweep(apps_list, ex, tech, options);
    ASSERT_EQ(first.report.evaluated, 6);
    EXPECT_EQ(first.stats.cells_replayed, 0);

    options.resume = true;
    const SweepOutcome second =
        runSweep(apps_list, ex, tech, options);
    EXPECT_EQ(second.stats.cells_replayed, 6);
    EXPECT_EQ(second.stats.tasks_run, 0);
    EXPECT_EQ(outcomeBytes(first), outcomeBytes(second));
}

TEST(Durability, SweepSurvivesSigkillAndResumesByteIdentical)
{
    ScratchDir dir("sigkill");
    const auto apps_list = smallApps();
    const Explorer ex(tech);

    SweepOptions options;
    options.journal_dir = dir.str();

    // The uninterrupted reference run (no journal involved).
    SweepOptions ref_options;
    const SweepOutcome reference =
        runSweep(apps_list, ex, tech, ref_options);
    ASSERT_EQ(reference.report.evaluated, 6);

    // Child: journaled sweep, hard-killed at the 4th journal append
    // (as kill -9 would: no cleanup, no stream flushes).
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        FaultInjector::instance().reset();
        FaultInjector::instance().arm(FaultStage::kCrash, 4);
        (void)runSweep(apps_list, ex, tech, options);
        _Exit(42); // not reached: the crash point fires first
    }
    int wait_status = 0;
    ASSERT_EQ(waitpid(pid, &wait_status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wait_status));
    ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);

    // Resume: the journaled prefix replays, the rest re-runs, and
    // the assembled report is byte-identical to the uninterrupted
    // reference.
    options.resume = true;
    const SweepOutcome resumed =
        runSweep(apps_list, ex, tech, options);
    EXPECT_GT(resumed.stats.cells_replayed, 0);
    EXPECT_LT(resumed.stats.cells_replayed, 6);
    EXPECT_EQ(resumed.report.evaluated, 6);
    EXPECT_EQ(outcomeBytes(reference), outcomeBytes(resumed));

    // And a second resume replays everything without recomputing.
    const SweepOutcome third =
        runSweep(apps_list, ex, tech, options);
    EXPECT_EQ(third.stats.cells_replayed, 6);
    EXPECT_EQ(third.stats.tasks_run, 0);
    EXPECT_EQ(outcomeBytes(reference), outcomeBytes(third));
}

// --- Process isolation -------------------------------------------------

TEST(Isolation, ProcessModeIsByteIdenticalWithoutFaults)
{
    const auto apps_list = smallApps();
    const Explorer ex(tech);

    SweepOptions inproc;
    const SweepOutcome reference =
        runSweep(apps_list, ex, tech, inproc);
    ASSERT_EQ(reference.report.evaluated, 6);

    for (int jobs : {1, 2}) {
        SweepOptions options;
        options.isolate = IsolateMode::kProcess;
        options.jobs = jobs;
        const SweepOutcome isolated =
            runSweep(apps_list, ex, tech, options);
        EXPECT_EQ(isolated.report.evaluated, 6) << "jobs " << jobs;
        EXPECT_EQ(outcomeBytes(reference), outcomeBytes(isolated))
            << "jobs " << jobs;
        EXPECT_EQ(isolated.stats.worker_restarts, 0);
        EXPECT_EQ(isolated.stats.worker_quarantined, 0);
    }
}

TEST(Isolation, WorkerKillIsRetriedTransparently)
{
    const auto apps_list = smallApps();
    const Explorer ex(tech);

    SweepOptions inproc;
    const SweepOutcome reference =
        runSweep(apps_list, ex, tech, inproc);

    // The 2nd dispatched cell kills its worker once; the retry on
    // the respawned worker succeeds and the report shows no trace.
    FaultScope fault(FaultStage::kWorkerKill, 2);
    SweepOptions options;
    options.isolate = IsolateMode::kProcess;
    const SweepOutcome isolated =
        runSweep(apps_list, ex, tech, options);
    EXPECT_EQ(isolated.report.evaluated, 6);
    EXPECT_EQ(outcomeBytes(reference), outcomeBytes(isolated));
    EXPECT_EQ(isolated.stats.worker_restarts, 1);
    EXPECT_EQ(isolated.stats.worker_retries, 1);
    EXPECT_EQ(isolated.stats.worker_quarantined, 0);
}

TEST(Isolation, PoisonCellIsQuarantinedDurably)
{
    ScratchDir dir("quarantine");
    const auto apps_list = smallApps();
    const Explorer ex(tech);

    SweepOptions options;
    options.isolate = IsolateMode::kProcess;
    options.cell_retries = 2;
    options.journal_dir = dir.str();

    std::string first_bytes;
    {
        // The first cell kills its worker on all 3 allowed attempts.
        FaultScope fault(FaultStage::kWorkerKill, 1, 3);
        const SweepOutcome outcome =
            runSweep(apps_list, ex, tech, options);
        EXPECT_EQ(outcome.report.evaluated, 5);
        ASSERT_EQ(outcome.report.failures.size(), 1u);
        const StageFailure &f = outcome.report.failures[0];
        EXPECT_EQ(f.stage, "worker");
        EXPECT_EQ(f.status.code(), ErrorCode::kWorkerCrashed);
        EXPECT_EQ(f.attempts, 3);
        EXPECT_NE(f.status.message().find("(crash)"),
                  std::string::npos)
            << f.status.message();
        EXPECT_EQ(outcome.stats.worker_quarantined, 1);
        EXPECT_EQ(outcome.stats.worker_retries, 2);
        EXPECT_EQ(outcome.stats.worker_restarts, 3);
        first_bytes = outcomeBytes(outcome);
    }

    // The quarantine verdict is durable: a resume (faults disarmed)
    // replays it from the journal instead of re-running the cell —
    // a poison cell must never get a second chance to kill workers.
    options.resume = true;
    const SweepOutcome resumed =
        runSweep(apps_list, ex, tech, options);
    EXPECT_EQ(resumed.stats.cells_replayed, 6);
    EXPECT_EQ(resumed.stats.tasks_run, 0);
    EXPECT_EQ(resumed.stats.worker_restarts, 0);
    EXPECT_EQ(first_bytes, outcomeBytes(resumed));
}

TEST(Isolation, HangingWorkerIsQuarantinedWithCause)
{
    const auto apps_list = smallApps();
    const Explorer ex(tech);

    FaultScope fault(FaultStage::kWorkerHang, 1, 2);
    SweepOptions options;
    options.isolate = IsolateMode::kProcess;
    options.cell_retries = 1;
    options.worker_heartbeat_ms = 5.0;
    options.worker_liveness_timeout_ms = 100.0;
    const SweepOutcome outcome =
        runSweep(apps_list, ex, tech, options);
    EXPECT_EQ(outcome.report.evaluated, 5);
    ASSERT_EQ(outcome.report.failures.size(), 1u);
    EXPECT_EQ(outcome.report.failures[0].status.code(),
              ErrorCode::kWorkerCrashed);
    EXPECT_NE(
        outcome.report.failures[0].status.message().find("(hang)"),
        std::string::npos)
        << outcome.report.failures[0].status.message();
}

TEST(Durability, MidJournalCorruptionReEvaluatesOnlyLostCells)
{
    ScratchDir dir("midjournal");
    const auto apps_list = smallApps();
    const Explorer ex(tech);

    SweepOptions ref_options;
    const SweepOutcome reference =
        runSweep(apps_list, ex, tech, ref_options);
    ASSERT_EQ(reference.report.evaluated, 6);

    SweepOptions options;
    options.journal_dir = dir.str();
    const SweepOutcome first =
        runSweep(apps_list, ex, tech, options);
    ASSERT_EQ(first.report.evaluated, 6);

    // Flip a payload byte of the *third* cell record — corruption in
    // the middle of the journal, with valid frames after it.  Replay
    // must keep only the prefix (2 cells), count the drop, and the
    // resume must re-evaluate exactly the lost cells.
    const std::string path = dir.str() + "/sweep.journal";
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        std::string all((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
        std::size_t at = 0;
        for (int i = 0; i < 3; ++i) {
            at = all.find("apexsweep 2 cell sum", at + 1);
            ASSERT_NE(at, std::string::npos) << "cell frame " << i;
        }
        const std::size_t header_end = all.find('\n', at);
        ASSERT_NE(header_end, std::string::npos);
        f.seekp(static_cast<std::streamoff>(header_end + 1));
        f.put(all[header_end + 1] == 'X' ? 'Y' : 'X');
    }

    const long long drops_before =
        telemetry::counter("apex.record.tail_drops").value();
    options.resume = true;
    const SweepOutcome resumed =
        runSweep(apps_list, ex, tech, options);
    EXPECT_EQ(
        telemetry::counter("apex.record.tail_drops").value(),
        drops_before + 1);
    EXPECT_EQ(resumed.stats.cells_replayed, 2);
    EXPECT_EQ(resumed.report.evaluated, 6);
    EXPECT_EQ(outcomeBytes(reference), outcomeBytes(resumed));

    // The re-run cells were re-journaled: a further resume replays
    // all six from a clean log.
    const SweepOutcome third =
        runSweep(apps_list, ex, tech, options);
    EXPECT_EQ(third.stats.cells_replayed, 6);
    EXPECT_EQ(third.stats.tasks_run, 0);
    EXPECT_EQ(outcomeBytes(reference), outcomeBytes(third));
}

// --- Graceful degradation ----------------------------------------------

TEST(Degradation, CellDeadlineFallsBackToCheapKnobs)
{
    const auto apps_list = smallApps();
    const Explorer ex(tech);
    SweepOptions options;
    // An unmeetable per-cell budget: every cell times out and takes
    // the degraded retry, which (unbounded) succeeds.
    options.cell_deadline_ms = 1e-6;

    const SweepOutcome outcome =
        runSweep(apps_list, ex, tech, options);
    EXPECT_EQ(outcome.report.evaluated, 6);
    EXPECT_EQ(outcome.report.degraded, 6);
    EXPECT_EQ(outcome.stats.cells_degraded, 6);
    EXPECT_TRUE(outcome.report.failures.empty());
    for (const SweepEntry &e : outcome.entries)
        EXPECT_TRUE(e.result.degraded) << e.app << '/' << e.variant;
    // The fallback is observable: a "deadline" warning per cell.
    EXPECT_EQ(outcome.report.diagnostics.count(Severity::kWarning),
              6);
    EXPECT_NE(outcome.report.summary().find("6 degraded"),
              std::string::npos);
}

TEST(Degradation, ResumedDegradedCellsAreNotRecountedInStats)
{
    ScratchDir dir("degradedresume");
    const auto apps_list = smallApps();
    const Explorer ex(tech);
    SweepOptions options;
    options.journal_dir = dir.str();
    options.cell_deadline_ms = 1e-6; // every cell degrades

    const SweepOutcome first =
        runSweep(apps_list, ex, tech, options);
    ASSERT_EQ(first.report.degraded, 6);
    ASSERT_EQ(first.stats.cells_degraded, 6);

    options.resume = true;
    const SweepOutcome second =
        runSweep(apps_list, ex, tech, options);
    EXPECT_EQ(second.stats.cells_replayed, 6);
    // The report mirrors the durable outcome: byte-identical to the
    // uninterrupted run, degraded cells included.
    EXPECT_EQ(second.report.degraded, 6);
    EXPECT_EQ(outcomeBytes(first), outcomeBytes(second));
    // The runtime stats count this run's work only.  Regression: a
    // resumed sweep used to recount every replayed degraded cell in
    // cells_degraded, so resuming inflated the counter each time.
    EXPECT_EQ(second.stats.tasks_run, 0);
    EXPECT_EQ(second.stats.cells_degraded, 0);
}

TEST(Degradation, ExpiredSweepDeadlineIsTimeoutNotHang)
{
    const auto apps_list = smallApps();
    const Explorer ex(tech);
    SweepOptions options;
    options.deadline = Deadline::after(-1.0);

    const SweepOutcome outcome =
        runSweep(apps_list, ex, tech, options);
    EXPECT_EQ(outcome.report.evaluated, 0);
    ASSERT_EQ(outcome.report.failures.size(), 2u);
    for (const StageFailure &f : outcome.report.failures) {
        EXPECT_EQ(f.status.code(), ErrorCode::kTimeout);
        EXPECT_EQ(f.stage, "deadline");
    }
}

// --- Resource exhaustion (disk full / I/O error) -----------------------

TEST(ResourceExhaustion, RecordLogLatchesAndTruncatesOnFailedAppend)
{
    ScratchDir dir("disk_full_log");
    const std::string path = dir.str() + "/log";
    {
        runtime::RecordLog log;
        ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
        ASSERT_TRUE(log.append("a", "durable").ok());

        FaultScope fault(FaultStage::kDiskFull, 1);
        const Status s = log.append("b", "torn away");
        ASSERT_FALSE(s.ok());
        EXPECT_EQ(s.code(), ErrorCode::kResourceExhausted);

        // The failure latches: the log deactivates, keeps the error,
        // and every later append reports it without touching disk.
        EXPECT_FALSE(log.active());
        EXPECT_EQ(log.lastError().code(),
                  ErrorCode::kResourceExhausted);
        EXPECT_EQ(log.append("c", "too late").code(),
                  ErrorCode::kResourceExhausted);
    }
    // The half-written frame was truncated back out (shrinking a
    // file needs no free space, so this works on a full disk): the
    // reopened log is *clean* — committed frames only, no corrupt
    // tail to drop.
    runtime::RecordLog log;
    ASSERT_TRUE(log.open(path, "apextest", 1, true).ok());
    EXPECT_EQ(log.recovery(), runtime::LogRecovery::kClean);
    ASSERT_EQ(log.records().size(), 1u);
    EXPECT_EQ(log.records()[0].payload, "durable");
    // And the repaired log accepts appends again.
    EXPECT_TRUE(log.append("d", "after recovery").ok());
    EXPECT_TRUE(log.lastError().ok());
}

TEST(ResourceExhaustion, CacheDiskTierDegradesAndRecovers)
{
    ScratchDir dir("disk_full_cache");
    runtime::CacheOptions copt;
    copt.disk_dir = dir.str() + "/cache";
    copt.disk_reprobe_ms = 0.0; // Re-probe on the next access.
    runtime::ArtifactCache cache(copt);
    telemetry::Gauge &disabled =
        telemetry::gauge("apex.cache.disk_disabled");

    cache.put("k1", "v1");
    EXPECT_FALSE(cache.diskDisabled());
    EXPECT_TRUE(fs::exists(cache.diskPathFor("k1")));

    {
        FaultScope fault(FaultStage::kDiskFull, 1);
        cache.put("k2", "v2"); // Disk write fails.
    }
    EXPECT_TRUE(cache.diskDisabled());
    EXPECT_EQ(disabled.value(), 1.0);
    EXPECT_FALSE(fs::exists(cache.diskPathFor("k2")));
    // Memory tier is untouched: the sweep continues, just undurably.
    EXPECT_EQ(cache.get("k2").value_or(""), "v2");

    // The fault cleared ("space returned"): the next put re-probes
    // the directory and re-enables the tier.
    cache.put("k3", "v3");
    EXPECT_FALSE(cache.diskDisabled());
    EXPECT_EQ(disabled.value(), 0.0);
    EXPECT_TRUE(fs::exists(cache.diskPathFor("k3")));
}

TEST(ResourceExhaustion, CacheStaysMemoryOnlyWhenReprobingIsOff)
{
    ScratchDir dir("disk_full_noreprobe");
    runtime::CacheOptions copt;
    copt.disk_dir = dir.str() + "/cache";
    copt.disk_reprobe_ms = -1.0; // Never re-probe.
    runtime::ArtifactCache cache(copt);

    {
        FaultScope fault(FaultStage::kDiskFull, 1);
        cache.put("k1", "v1");
    }
    EXPECT_TRUE(cache.diskDisabled());
    cache.put("k2", "v2"); // Would succeed — but the latch holds.
    EXPECT_TRUE(cache.diskDisabled());
    EXPECT_FALSE(fs::exists(cache.diskPathFor("k2")));
    EXPECT_EQ(cache.get("k2").value_or(""), "v2");
}

TEST(ResourceExhaustion, JournalWriteFailureFailsSweepLoudly)
{
    ScratchDir dir("disk_full_journal");
    const auto apps_list = smallApps();
    const Explorer ex(tech);
    SweepOptions options;
    options.journal_dir = dir.str();

    // Append #1 is the journal header; #2 the first completed unit
    // of work.  Failing #2 breaks the durability promise mid-run.
    SweepOutcome broken;
    {
        FaultScope fault(FaultStage::kDiskFull, 2);
        broken = runSweep(apps_list, ex, tech, options);
    }
    ASSERT_FALSE(broken.durability.ok());
    EXPECT_EQ(broken.durability.code(),
              ErrorCode::kResourceExhausted);
    EXPECT_EQ(exitCodeFor(broken.durability.code()), 17);
    // The failure is loud in the report too, not only in the code.
    bool durability_diag = false;
    for (const DiagnosticRecord &r :
         broken.report.diagnostics.records())
        if (r.severity == Severity::kError &&
            r.stage == "durability")
            durability_diag = true;
    EXPECT_TRUE(durability_diag);
    // The sweep itself still completed — the work is reported, only
    // the checkpoint promise broke.
    EXPECT_GT(broken.report.evaluated, 0);

    // The truncated journal replays cleanly: resuming completes the
    // sweep durably and byte-identically to an undisturbed run.
    options.resume = true;
    const SweepOutcome resumed =
        runSweep(apps_list, ex, tech, options);
    EXPECT_TRUE(resumed.durability.ok());
    const SweepOutcome reference =
        runSweep(apps_list, ex, tech, SweepOptions{});
    EXPECT_EQ(outcomeBytes(resumed), outcomeBytes(reference));
}

TEST(ResourceExhaustion, JournalOpenFailureIsAlsoLoud)
{
    ScratchDir dir("disk_full_open");
    const auto apps_list = smallApps();
    const Explorer ex(tech);
    SweepOptions options;
    options.journal_dir = dir.str();
    options.deadline = Deadline::after(0.000001); // Cheap cells.

    // Append #1 — the header written by open() — fails: journaling
    // never starts, and the sweep must say so.
    FaultScope fault(FaultStage::kDiskFull, 1);
    const SweepOutcome outcome =
        runSweep(apps_list, ex, tech, options);
    ASSERT_FALSE(outcome.durability.ok());
    EXPECT_EQ(outcome.durability.code(),
              ErrorCode::kResourceExhausted);
    EXPECT_NE(outcome.durability.toString().find("opening sweep "
                                                 "journal"),
              std::string::npos);
}

TEST(Degradation, NonOptimalCliqueIsSurfacedAsWarning)
{
    const auto apps_list = smallApps();
    ExplorerOptions xo;
    // A one-node branch-and-bound budget: every non-trivial clique
    // search stops at the greedy seed, non-optimally.
    xo.merge.clique_budget = 1;
    const Explorer ex(tech, xo);
    SweepOptions options;

    const SweepOutcome outcome =
        runSweep(apps_list, ex, tech, options);
    EXPECT_GT(outcome.stats.non_optimal_cliques, 0);
    bool merge_warning = false;
    for (const DiagnosticRecord &r :
         outcome.report.diagnostics.records())
        if (r.severity == Severity::kWarning && r.stage == "merge")
            merge_warning = true;
    EXPECT_TRUE(merge_warning);
}

} // namespace
} // namespace apex::core
