/**
 * Extension: heterogeneous CGRAs (the paper evaluates homogeneous
 * fabrics only; REVAMP-style heterogeneity is the natural follow-up).
 * Compare, per application: the homogeneous baseline CGRA, the
 * homogeneous domain CGRA, and a big.LITTLE fabric that pairs the
 * domain PE with a minimal scalar PE absorbing the single-op work.
 */
#include "bench/common.hpp"
#include "core/hetero.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    bench::header("Extension: heterogeneous (big.LITTLE) CGRA");
    const core::PeVariant base = ex.baselineVariant();
    const core::PeVariant pe_ip =
        ex.domainVariant(apps::ipApps(), 1, "pe_ip");
    const core::PeVariant pe_ml =
        ex.domainVariant(apps::mlApps(), 1, "pe_ml");

    std::printf("  %-10s %-12s %10s %14s %14s\n", "app", "fabric",
                "#PE(b+l)", "PE area(um2)", "PE pJ/item");

    for (const apps::AppInfo &app : apps::analyzedApps()) {
        const bool is_ip =
            app.domain == apps::Domain::kImageProcessing;
        const core::PeVariant &domain = is_ip ? pe_ip : pe_ml;

        const auto rb = bench::evalOrWarn(
            app, base, core::EvalLevel::kPostMapping, tech);
        const auto rd = bench::evalOrWarn(
            app, domain, core::EvalLevel::kPostMapping, tech);
        const auto rh = core::evaluateHetero(
            app, core::makeBigLittleCgra(domain, "biglittle"),
            core::EvalLevel::kPostMapping, tech);
        if (!rb.success || !rd.success)
            continue;
        if (!rh.success) {
            std::printf("  %-10s hetero FAILED: %s\n",
                        app.name.c_str(), rh.error.c_str());
            continue;
        }
        std::printf("  %-10s %-12s %10d %14.0f %14.2f\n",
                    app.name.c_str(), "homog-base", rb.pe_count,
                    rb.pe_area, rb.pe_energy);
        std::printf("  %-10s %-12s %10d %14.0f %14.2f\n",
                    app.name.c_str(), "homog-dom", rd.pe_count,
                    rd.pe_area, rd.pe_energy);
        std::printf("  %-10s %-12s %6d+%-3d %14.0f %14.2f   "
                    "(area %+.1f%% vs homog-dom)\n",
                    app.name.c_str(), "big.LITTLE",
                    rh.pe_count_by_type[0], rh.pe_count_by_type[1],
                    rh.pe_area, rh.pe_energy,
                    bench::pct(rh.pe_area, rd.pe_area));
    }
    bench::note("the little PE absorbs single-op rewrite rules at a "
                "fraction of the domain PE's area; the domain PE "
                "keeps the merged multi-op patterns");
    return 0;
}
