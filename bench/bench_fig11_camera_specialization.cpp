/**
 * Fig. 11: total PE-core area and energy as the PE is increasingly
 * specialized for the camera pipeline (PE Base, PE 1 .. PE 4).
 * Paper shape: monotone-ish decrease, up to 78% area and 68% energy
 * below the baseline at PE 4 (= PE Spec).
 */
#include "bench/common.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;
    const auto app = apps::cameraPipeline();

    bench::header(
        "Fig. 11: specializing the PE for camera pipeline");
    std::printf("  %-10s %6s %14s %16s %14s\n", "variant", "#PE",
                "area/PE(um2)", "total area(um2)",
                "energy(pJ/px)");

    struct Row {
        std::string label;
        core::PeVariant variant;
    };
    std::vector<Row> rows;
    rows.push_back({"PE Base", ex.baselineVariant()});
    rows.push_back({"PE 1", ex.subsetVariant(app)});
    for (int k = 1; k <= 3; ++k) {
        rows.push_back({"PE " + std::to_string(k + 1),
                        ex.specializedVariant(app, k)});
    }

    double base_area = 0.0, base_energy = 0.0;
    double last_area = 0.0, last_energy = 0.0;
    for (const Row &row : rows) {
        const auto r = bench::evalOrWarn(
            app, row.variant, core::EvalLevel::kPostMapping, tech);
        if (!r.success)
            continue;
        std::printf("  %-10s %6d %14.2f %16.0f %14.2f\n",
                    row.label.c_str(), r.pe_count,
                    r.pe_area / r.pe_count, r.pe_area, r.pe_energy);
        if (row.label == "PE Base") {
            base_area = r.pe_area;
            base_energy = r.pe_energy;
        }
        last_area = r.pe_area;
        last_energy = r.pe_energy;
    }

    std::printf("\n  most specialized vs baseline: area %+.1f%%, "
                "energy %+.1f%%\n",
                bench::pct(last_area, base_area),
                bench::pct(last_energy, base_energy));
    bench::note("paper: up to -78% area, -68% energy (Sec. 5.1)");
    return 0;
}
