/**
 * Fig. 12: three PE-IP variants with different degrees of domain
 * merging, evaluated on the four image-processing applications.
 *  - PE IP  : one top subgraph per application;
 *  - PE IP2 : two top subgraphs per application (over-merged);
 *  - PE IP3 : unbalanced — camera contributes three subgraphs, the
 *             others one.
 * Paper shape: PE IP2 can be *worse* than PE IP (over-merging);
 * PE IP3 helps camera but hurts the other applications.
 */
#include <set>

#include "bench/common.hpp"
#include "merging/merge.hpp"
#include "pe/baseline.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;
    const auto ip_apps = apps::ipApps();

    bench::header("Fig. 12: degree of domain merging (PE IP/IP2/IP3)");

    const core::PeVariant pe_ip =
        ex.domainVariant(ip_apps, 1, "pe_ip");
    const core::PeVariant pe_ip2 =
        ex.domainVariant(ip_apps, 2, "pe_ip2");

    // Unbalanced variant: camera's top-3 plus one from each other.
    core::PeVariant pe_ip3;
    {
        std::vector<apps::AppInfo> weighted;
        weighted.push_back(apps::cameraPipeline());
        core::PeVariant camera_heavy = ex.domainVariant(
            ip_apps, 1, "pe_ip3");
        // Rebuild with camera's extra patterns folded in.
        const auto extra = ex.specializedVariant(
            apps::cameraPipeline(), 3);
        std::vector<ir::Graph> patterns = camera_heavy.patterns;
        for (const auto &p : extra.patterns)
            patterns.push_back(p);
        pe_ip3 = camera_heavy;
        pe_ip3.patterns = patterns;
        std::set<ir::Op> ops;
        for (const auto &a : ip_apps) {
            const auto o = pe::opsUsedBy(a.graph);
            ops.insert(o.begin(), o.end());
        }
        const pe::PeSpec seed = pe::baselineSubsetPe(ops, "pe_ip3");
        const auto mm = merging::mergeIntoDatapath(
            seed.dp, patterns, tech, nullptr);
        pe_ip3.spec = pe::makePeSpec(mm.merged, "pe_ip3");
    }

    std::printf("  PE area: ip=%.0f ip2=%.0f ip3=%.0f um^2\n",
                pe_ip.spec.area(tech), pe_ip2.spec.area(tech),
                pe_ip3.spec.area(tech));
    std::printf("\n  %-10s %-8s %6s %14s %14s\n", "app", "variant",
                "#PE", "area(um2)", "energy(pJ/px)");

    for (const apps::AppInfo &app : ip_apps) {
        for (const core::PeVariant *v :
             {&pe_ip, &pe_ip2,
              const_cast<const core::PeVariant *>(&pe_ip3)}) {
            const auto r = bench::evalOrWarn(
                app, *v, core::EvalLevel::kPostMapping, tech);
            if (!r.success)
                continue;
            std::printf("  %-10s %-8s %6d %14.0f %14.2f\n",
                        app.name.c_str(), v->name.c_str(),
                        r.pe_count, r.pe_area, r.pe_energy);
        }
    }
    bench::note("paper: merging too many subgraphs (IP2) can raise "
                "area/energy; unbalanced IP3 rewards camera only");
    return 0;
}
