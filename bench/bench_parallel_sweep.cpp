/**
 * Parallel DSE runtime scaling: the full variant sweep across the
 * analyzed suite at jobs in {1, 2, 4, 8}, cold- vs warm-cache, with
 * one machine-readable JSON line per configuration.
 *
 * On a single-core host the jobs > 1 rows measure scheduling overhead
 * (time-slicing one core cannot speed anything up); the interesting
 * invariants there are that overhead stays small and that every
 * configuration reproduces the jobs=1 results exactly.  On multi-core
 * hosts the same rows report the actual scaling curve.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "bench/common.hpp"
#include "core/sweep.hpp"
#include "model/tech.hpp"
#include "runtime/cache.hpp"

namespace {

using namespace apex;

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Stable digest of a sweep outcome for cross-config comparison. */
std::string
resultDigest(const core::SweepOutcome &out)
{
    std::string s;
    char buf[160];
    for (const auto &e : out.entries) {
        std::snprintf(buf, sizeof buf, "%s/%s:%a:%a;", e.app.c_str(),
                      e.variant.c_str(), e.result.pe_area,
                      e.result.frames_per_ms_mm2);
        s += buf;
    }
    return s;
}

} // namespace

int
main()
{
    bench::header("Parallel sweep scaling (runtime subsystem)");
    const unsigned cores = std::thread::hardware_concurrency();
    bench::note("host cores: " + std::to_string(cores));

    const auto suite = apps::analyzedApps();
    const model::TechModel &tech = model::defaultTech();
    const core::Explorer explorer(tech);

    std::string reference; // jobs=1 cold digest
    for (const int jobs : {1, 2, 4, 8}) {
        runtime::ArtifactCache cache;
        for (const bool warm : {false, true}) {
            core::SweepOptions options;
            options.jobs = jobs;
            options.cache = &cache;
            const bench::StageSnapshot stages;
            const auto t0 = std::chrono::steady_clock::now();
            const auto out =
                core::runSweep(suite, explorer, tech, options);
            const double wall_ms = msSince(t0);

            const std::string digest = resultDigest(out);
            if (reference.empty())
                reference = digest;
            const bool identical = digest == reference;

            std::printf("{\"bench\":\"parallel_sweep\","
                        "\"jobs\":%d,\"cache\":\"%s\","
                        "\"wall_ms\":%.2f,\"entries\":%zu,"
                        "\"failures\":%zu,\"cache_hits\":%ld,"
                        "\"cache_misses\":%ld,\"tasks_stolen\":%ld,"
                        "\"matches_jobs1\":%s,%s}\n",
                        jobs, warm ? "warm" : "cold", wall_ms,
                        out.entries.size(),
                        out.report.failures.size(),
                        out.stats.cache_hits, out.stats.cache_misses,
                        out.stats.tasks_stolen,
                        identical ? "true" : "false",
                        stages.jsonFragment().c_str());
            if (!identical) {
                bench::note("DETERMINISM VIOLATION at jobs=" +
                            std::to_string(jobs));
                return 1;
            }
        }
    }
    bench::note("all configurations byte-identical to jobs=1");
    return 0;
}
