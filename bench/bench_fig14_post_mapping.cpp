/**
 * Fig. 14: post-mapping PE-only area and energy of the baseline PE,
 * PE IP (image processing), PE ML (machine learning), and PE Spec
 * (per-application), across all six analyzed applications.
 * Paper shape: PE IP -22%..-33% area on IP apps; PE Spec up to -58%;
 * PE ML -74%..-80% area on ML apps.
 */
#include "bench/common.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    bench::header("Fig. 14: post-mapping comparison");
    const core::PeVariant base = ex.baselineVariant();
    const core::PeVariant pe_ip =
        ex.domainVariant(apps::ipApps(), 1, "pe_ip");
    const core::PeVariant pe_ml =
        ex.domainVariant(apps::mlApps(), 1, "pe_ml");

    std::printf("  %-10s %-8s %6s %14s %14s %10s %10s\n", "app",
                "variant", "#PE", "area(um2)", "energy(pJ/it)",
                "dArea%", "dEnergy%");

    for (const apps::AppInfo &app : apps::analyzedApps()) {
        const bool is_ip =
            app.domain == apps::Domain::kImageProcessing;
        const core::PeVariant &domain = is_ip ? pe_ip : pe_ml;
        const core::PeVariant spec =
            core::bestSpecializedVariant(app, ex, tech);

        const auto rb = bench::evalOrWarn(
            app, base, core::EvalLevel::kPostMapping, tech);
        if (!rb.success)
            continue;
        std::printf("  %-10s %-8s %6d %14.0f %14.2f %10s %10s\n",
                    app.name.c_str(), "base", rb.pe_count,
                    rb.pe_area, rb.pe_energy, "-", "-");
        for (const auto *v : {&domain, &spec}) {
            const auto r = bench::evalOrWarn(
                app, *v, core::EvalLevel::kPostMapping, tech);
            if (!r.success)
                continue;
            std::printf(
                "  %-10s %-8s %6d %14.0f %14.2f %+9.1f%% %+9.1f%%\n",
                app.name.c_str(),
                v == &spec ? "spec" : (is_ip ? "pe_ip" : "pe_ml"),
                r.pe_count, r.pe_area, r.pe_energy,
                bench::pct(r.pe_area, rb.pe_area),
                bench::pct(r.pe_energy, rb.pe_energy));
        }
    }
    bench::note("paper: PE IP -22..-33% area (IP apps), PE Spec to "
                "-58%, PE ML -74..-80% area (ML apps)");
    return 0;
}
