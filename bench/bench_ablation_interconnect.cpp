/**
 * Ablation: interconnect provisioning.  Sec. 2.3 argues the SB/CB
 * cost makes PE I/O a first-order design axis; this bench sweeps the
 * per-link track count and reports routability, detour cost and
 * router effort for a congested application (Harris on the baseline
 * PE), plus the modeled SB area at each width.
 */
#include "bench/common.hpp"
#include "cgra/place.hpp"
#include "cgra/route.hpp"
#include "mapper/rewrite.hpp"
#include "mapper/select.hpp"
#include "pe/baseline.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();

    bench::header("Ablation: routing tracks per link");

    const auto app = apps::harrisCorner();
    const pe::PeSpec spec = pe::baselinePe();
    mapper::RewriteRuleSynthesizer synth(spec);
    mapper::InstructionSelector selector(synth.synthesizeLibrary({}));
    const auto sel = selector.map(app.graph);
    if (!sel.success) {
        std::printf("  mapping failed: %s\n", sel.error.c_str());
        return 1;
    }

    const cgra::Fabric fabric(32, 32);
    const auto placement = cgra::place(fabric, sel.mapped);
    if (!placement.success) {
        std::printf("  placement failed: %s\n",
                    placement.error.c_str());
        return 1;
    }

    std::printf("  %-7s %-9s %8s %10s %12s %14s\n", "tracks",
                "routed?", "hops", "iters", "overflow",
                "SB area scale");
    for (int tracks = 2; tracks <= 8; ++tracks) {
        cgra::RouterOptions options;
        options.tracks = tracks;
        const auto routing = cgra::route(fabric, placement, options);
        std::printf("  %-7d %-9s %8d %10d %12d %13.2fx\n", tracks,
                    routing.success ? "yes" : "NO",
                    routing.total_hops, routing.iterations,
                    routing.register_overflow,
                    static_cast<double>(tracks) / tech.sb_tracks);
    }
    bench::note("the paper's fabric uses 5 tracks/side/direction; "
                "below the routability knee the router pays detours "
                "and iterations, above it SB area is wasted");
    return 0;
}
