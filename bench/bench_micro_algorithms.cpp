/**
 * Micro-benchmarks (google-benchmark) for the algorithmic cores of
 * the framework: frequent-subgraph mining, maximum-weight clique,
 * datapath merging, rewrite-rule synthesis, instruction selection,
 * placement and routing.  The paper's headline process claim is that
 * the whole APEX flow runs "in minutes" vs hours for prior work —
 * these benches document where the time goes in this implementation.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "apps/apps.hpp"
#include "bench/common.hpp"
#include "cgra/place.hpp"
#include "cgra/route.hpp"
#include "core/evaluate.hpp"
#include "ir/builder.hpp"
#include "ir/serialize.hpp"
#include "mapper/rewrite.hpp"
#include "mapper/select.hpp"
#include "merging/clique.hpp"
#include "merging/merge.hpp"
#include "mining/isomorphism.hpp"
#include "mining/miner.hpp"
#include "mining/mis.hpp"
#include "model/tech.hpp"
#include "pe/baseline.hpp"

namespace {

using namespace apex;

void
BM_MineGaussian(benchmark::State &state)
{
    const auto app = apps::gaussianBlur(
        static_cast<int>(state.range(0)));
    mining::FrequentSubgraphMiner miner(
        {.min_support = 3, .max_pattern_nodes = 4});
    for (auto _ : state) {
        auto patterns = miner.mine(app.graph);
        benchmark::DoNotOptimize(patterns);
    }
    state.SetLabel(std::to_string(app.graph.size()) + " nodes");
}
BENCHMARK(BM_MineGaussian)->Arg(1)->Arg(2)->Arg(4);

void
BM_MineCamera(benchmark::State &state)
{
    const auto app = apps::cameraPipeline(1);
    mining::FrequentSubgraphMiner miner(
        {.min_support = 3, .max_pattern_nodes = 4});
    for (auto _ : state) {
        auto patterns = miner.mine(app.graph);
        benchmark::DoNotOptimize(patterns);
    }
}
BENCHMARK(BM_MineCamera);

void
BM_MaxWeightClique(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    merging::CliqueProblem pb;
    pb.n = n;
    pb.adj.assign(n, std::vector<bool>(n, false));
    std::uint32_t lcg = 12345;
    for (int i = 0; i < n; ++i) {
        pb.weight.push_back(1.0 + (i % 7));
        for (int j = i + 1; j < n; ++j) {
            lcg = lcg * 1664525u + 1013904223u;
            if ((lcg >> 16) % 100 < 55)
                pb.adj[i][j] = pb.adj[j][i] = true;
        }
    }
    for (auto _ : state) {
        auto result = merging::maxWeightClique(pb, 500000);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_MaxWeightClique)->Arg(40)->Arg(80)->Arg(160);

void
BM_MergeDatapaths(benchmark::State &state)
{
    core::Explorer ex;
    const auto app = apps::harrisCorner(1);
    const auto patterns = ex.analyze(app.graph);
    std::vector<ir::Graph> graphs;
    for (std::size_t i = 0;
         i < std::min<std::size_t>(4, patterns.size()); ++i)
        graphs.push_back(patterns[i].pattern);
    const auto &tech = model::defaultTech();
    for (auto _ : state) {
        auto merged = merging::mergePatterns(graphs, tech);
        benchmark::DoNotOptimize(merged);
    }
}
BENCHMARK(BM_MergeDatapaths);

void
BM_RewriteRuleLibrary(benchmark::State &state)
{
    const pe::PeSpec spec = pe::baselinePe();
    mapper::RewriteRuleSynthesizer synth(spec);
    for (auto _ : state) {
        auto rules = synth.synthesizeLibrary({});
        benchmark::DoNotOptimize(rules);
    }
}
BENCHMARK(BM_RewriteRuleLibrary);

void
BM_InstructionSelectCamera(benchmark::State &state)
{
    const auto app = apps::cameraPipeline(1);
    const pe::PeSpec spec = pe::baselinePe();
    mapper::RewriteRuleSynthesizer synth(spec);
    mapper::InstructionSelector selector(synth.synthesizeLibrary({}));
    for (auto _ : state) {
        auto result = selector.map(app.graph);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_InstructionSelectCamera);

void
BM_PlaceAndRouteCamera(benchmark::State &state)
{
    const auto app = apps::cameraPipeline(2);
    const pe::PeSpec spec = pe::baselinePe();
    mapper::RewriteRuleSynthesizer synth(spec);
    mapper::InstructionSelector selector(synth.synthesizeLibrary({}));
    const auto sel = selector.map(app.graph);
    const cgra::Fabric fabric(32, 16);
    for (auto _ : state) {
        auto placement = cgra::place(fabric, sel.mapped);
        auto routing = cgra::route(fabric, placement);
        benchmark::DoNotOptimize(routing);
    }
}
BENCHMARK(BM_PlaceAndRouteCamera);

void
BM_FullFlowGaussian(benchmark::State &state)
{
    core::Explorer ex;
    const auto app = apps::gaussianBlur(4);
    const auto variant = ex.specVariant(app);
    const auto &tech = model::defaultTech();
    for (auto _ : state) {
        auto r = core::evaluate(app, variant,
                                core::EvalLevel::kPostPipelining,
                                tech);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_FullFlowGaussian);

// ---------------------------------------------------------------------
// `--kernels`: deterministic scaling rows for the combinatorial
// kernels, one JSON object per line.  Instances are seeded, weights
// live on an integer grid and node counts are branch-deterministic,
// so the numbers are byte-stable across machines — the CI perf-smoke
// job diffs them against the checked-in BENCH_kernels.json baseline.

double
wallMs(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The BM_MaxWeightClique instance family (same LCG, same density). */
merging::CliqueProblem
kernelCliqueInstance(int n)
{
    merging::CliqueProblem pb;
    pb.n = n;
    pb.adj.assign(n, std::vector<bool>(n, false));
    std::uint32_t lcg = 12345;
    for (int i = 0; i < n; ++i) {
        pb.weight.push_back(1.0 + (i % 7));
        for (int j = i + 1; j < n; ++j) {
            lcg = lcg * 1664525u + 1013904223u;
            if ((lcg >> 16) % 100 < 55)
                pb.adj[i][j] = pb.adj[j][i] = true;
        }
    }
    return pb;
}

std::vector<std::vector<ir::NodeId>>
kernelOccurrences(int n)
{
    std::uint32_t lcg = 777;
    std::vector<std::vector<ir::NodeId>> occ(n);
    for (int i = 0; i < n; ++i) {
        for (int k = 0; k < 4; ++k) {
            lcg = lcg * 1664525u + 1013904223u;
            occ[i].push_back(
                static_cast<ir::NodeId>((lcg >> 16) % n));
        }
        std::sort(occ[i].begin(), occ[i].end());
        occ[i].erase(std::unique(occ[i].begin(), occ[i].end()),
                     occ[i].end());
    }
    return occ;
}

ir::Graph
kernelIsoTarget(int ops)
{
    std::uint32_t lcg = 4242;
    ir::GraphBuilder b;
    std::vector<ir::Value> pool;
    for (int i = 0; i < 4; ++i)
        pool.push_back(b.input());
    pool.push_back(b.constant(3));
    for (int i = 0; i < ops; ++i) {
        lcg = lcg * 1664525u + 1013904223u;
        const ir::Value x = pool[(lcg >> 16) % pool.size()];
        lcg = lcg * 1664525u + 1013904223u;
        const ir::Value y = pool[(lcg >> 16) % pool.size()];
        lcg = lcg * 1664525u + 1013904223u;
        switch ((lcg >> 16) % 3) {
        case 0: pool.push_back(b.add(x, y)); break;
        case 1: pool.push_back(b.mul(x, y)); break;
        default: pool.push_back(b.sub(x, y)); break;
        }
    }
    b.output(pool.back());
    return b.take();
}

int
runKernelRows()
{
    // Clique: bitset BBMC with the coloring bound vs the historic
    // weight-sum bound (reference solver).  `nodes` is the telemetry
    // counter apex.clique.nodes for this row; the >= 5x node
    // reduction is the headline claim checked by CI.
    for (int n : {40, 80, 160, 240}) {
        const auto pb = kernelCliqueInstance(n);
        bench::StageSnapshot stages;
        auto t0 = std::chrono::steady_clock::now();
        const auto got = merging::maxWeightClique(pb, 500000);
        const double ms = wallMs(t0);
        t0 = std::chrono::steady_clock::now();
        const auto weak = merging::maxWeightCliqueReference(
            pb, 2'000'000, {}, merging::CliqueBound::kWeightSum);
        const double ms_ref = wallMs(t0);
        const double ratio =
            got.nodes > 0 ? static_cast<double>(weak.nodes) /
                                static_cast<double>(got.nodes)
                          : 0.0;
        std::printf("{\"kernel\":\"clique\",\"n\":%d,"
                    "\"nodes\":%lld,\"nodes_weak\":%lld,"
                    "\"ratio\":%.2f,\"weight\":%.1f,"
                    "\"match\":%s,\"ms\":%.2f,\"ms_ref\":%.2f,%s}\n",
                    n, static_cast<long long>(got.nodes),
                    static_cast<long long>(weak.nodes), ratio,
                    got.weight,
                    (!got.optimal || !weak.optimal ||
                     got.vertices == weak.vertices)
                        ? "true"
                        : "false",
                    ms, ms_ref, stages.jsonFragment().c_str());
    }

    // MIS: inverted-index overlap + bucket greedy / bitset exact vs
    // the all-pairs + scanning reference.
    for (int n : {26, 200, 800, 2000}) {
        const auto occ = kernelOccurrences(n);
        bench::StageSnapshot stages;
        auto t0 = std::chrono::steady_clock::now();
        const auto got = mining::maximalIndependentSet(occ);
        const double ms = wallMs(t0);
        t0 = std::chrono::steady_clock::now();
        const auto ref = mining::maximalIndependentSetReference(occ);
        const double ms_ref = wallMs(t0);
        std::printf("{\"kernel\":\"mis\",\"n\":%d,\"size\":%d,"
                    "\"match\":%s,\"ms\":%.2f,\"ms_ref\":%.2f,%s}\n",
                    n, got.size,
                    got.chosen == ref.chosen ? "true" : "false", ms,
                    ms_ref, stages.jsonFragment().c_str());
    }

    // Isomorphism: label-indexed matcher vs whole-graph-scan
    // reference, multiply-accumulate pattern.
    ir::GraphBuilder bp;
    bp.add(bp.mul(bp.input(), bp.input()), bp.input());
    const ir::Graph pattern = bp.take();
    for (int ops : {200, 800, 3200}) {
        const ir::Graph target = kernelIsoTarget(ops);
        bench::StageSnapshot stages;
        auto t0 = std::chrono::steady_clock::now();
        const auto got = mining::findEmbeddings(pattern, target);
        const double ms = wallMs(t0);
        t0 = std::chrono::steady_clock::now();
        const auto ref =
            mining::findEmbeddingsReference(pattern, target);
        const double ms_ref = wallMs(t0);
        bool match = got.size() == ref.size();
        for (std::size_t i = 0; match && i < got.size(); ++i)
            match = got[i].map == ref[i].map;
        std::printf("{\"kernel\":\"iso\",\"n\":%d,"
                    "\"embeddings\":%zu,\"match\":%s,"
                    "\"ms\":%.2f,\"ms_ref\":%.2f,%s}\n",
                    ops, got.size(), match ? "true" : "false", ms,
                    ms_ref, stages.jsonFragment().c_str());
    }
    return 0;
}

// ---------------------------------------------------------------------
// `--miner`: the DFS-code engine vs the reference growth miner over
// every paper app, one JSON row per app.  Every counter field is
// deterministic for the (app, options) pair — candidate enumeration
// order is fixed and the engines are byte-identical by contract — so
// CI diffs the rows against BENCH_miner.json and gates both
// `match:true` (pattern lists identical) and the >= 3x reduction in
// full isomorphism-matcher invocations (`iso_calls` vs
// `iso_calls_ref`), the headline claim of the incremental-embedding
// rework.  Only `ms` / `ms_ref` vary across machines.

bool
minedListsIdentical(const std::vector<mining::MinedPattern> &a,
                    const std::vector<mining::MinedPattern> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].code != b[i].code ||
            a[i].frequency != b[i].frequency ||
            a[i].mni_support != b[i].mni_support ||
            a[i].occurrences != b[i].occurrences ||
            ir::serialize(a[i].pattern) != ir::serialize(b[i].pattern))
            return false;
    }
    return true;
}

int
runMinerRows()
{
    mining::MinerOptions opt;
    opt.min_support = 3;
    opt.max_pattern_nodes = 4;
    for (const auto &info : apps::allApps()) {
        mining::MineStats st, st_ref;
        opt.engine = mining::MinerEngine::kDfsCode;
        const mining::FrequentSubgraphMiner miner(opt);
        auto t0 = std::chrono::steady_clock::now();
        const auto got = miner.mine(info.graph, &st);
        const double ms = wallMs(t0);
        t0 = std::chrono::steady_clock::now();
        const auto ref =
            mining::minePatternsReference(info.graph, opt, &st_ref);
        const double ms_ref = wallMs(t0);
        std::printf(
            "{\"kernel\":\"miner\",\"app\":\"%s\",\"n\":%zu,"
            "\"patterns\":%lld,\"candidates\":%lld,"
            "\"embeddings\":%lld,\"iso_calls\":%lld,"
            "\"iso_calls_ref\":%lld,\"match\":%s,"
            "\"ms\":%.2f,\"ms_ref\":%.2f}\n",
            info.name.c_str(), info.graph.size(), st.patterns,
            st.candidates, st.embeddings, st.matcher_calls,
            st_ref.matcher_calls,
            minedListsIdentical(got, ref) ? "true" : "false", ms,
            ms_ref);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--kernels") == 0)
            return runKernelRows();
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--miner") == 0)
            return runMinerRows();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
