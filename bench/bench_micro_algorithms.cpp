/**
 * Micro-benchmarks (google-benchmark) for the algorithmic cores of
 * the framework: frequent-subgraph mining, maximum-weight clique,
 * datapath merging, rewrite-rule synthesis, instruction selection,
 * placement and routing.  The paper's headline process claim is that
 * the whole APEX flow runs "in minutes" vs hours for prior work —
 * these benches document where the time goes in this implementation.
 */
#include <benchmark/benchmark.h>

#include "apps/apps.hpp"
#include "cgra/place.hpp"
#include "cgra/route.hpp"
#include "core/evaluate.hpp"
#include "mapper/rewrite.hpp"
#include "mapper/select.hpp"
#include "merging/clique.hpp"
#include "merging/merge.hpp"
#include "mining/miner.hpp"
#include "model/tech.hpp"
#include "pe/baseline.hpp"

namespace {

using namespace apex;

void
BM_MineGaussian(benchmark::State &state)
{
    const auto app = apps::gaussianBlur(
        static_cast<int>(state.range(0)));
    mining::FrequentSubgraphMiner miner(
        {.min_support = 3, .max_pattern_nodes = 4});
    for (auto _ : state) {
        auto patterns = miner.mine(app.graph);
        benchmark::DoNotOptimize(patterns);
    }
    state.SetLabel(std::to_string(app.graph.size()) + " nodes");
}
BENCHMARK(BM_MineGaussian)->Arg(1)->Arg(2)->Arg(4);

void
BM_MineCamera(benchmark::State &state)
{
    const auto app = apps::cameraPipeline(1);
    mining::FrequentSubgraphMiner miner(
        {.min_support = 3, .max_pattern_nodes = 4});
    for (auto _ : state) {
        auto patterns = miner.mine(app.graph);
        benchmark::DoNotOptimize(patterns);
    }
}
BENCHMARK(BM_MineCamera);

void
BM_MaxWeightClique(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    merging::CliqueProblem pb;
    pb.n = n;
    pb.adj.assign(n, std::vector<bool>(n, false));
    std::uint32_t lcg = 12345;
    for (int i = 0; i < n; ++i) {
        pb.weight.push_back(1.0 + (i % 7));
        for (int j = i + 1; j < n; ++j) {
            lcg = lcg * 1664525u + 1013904223u;
            if ((lcg >> 16) % 100 < 55)
                pb.adj[i][j] = pb.adj[j][i] = true;
        }
    }
    for (auto _ : state) {
        auto result = merging::maxWeightClique(pb, 500000);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_MaxWeightClique)->Arg(40)->Arg(80)->Arg(160);

void
BM_MergeDatapaths(benchmark::State &state)
{
    core::Explorer ex;
    const auto app = apps::harrisCorner(1);
    const auto patterns = ex.analyze(app.graph);
    std::vector<ir::Graph> graphs;
    for (std::size_t i = 0;
         i < std::min<std::size_t>(4, patterns.size()); ++i)
        graphs.push_back(patterns[i].pattern);
    const auto &tech = model::defaultTech();
    for (auto _ : state) {
        auto merged = merging::mergePatterns(graphs, tech);
        benchmark::DoNotOptimize(merged);
    }
}
BENCHMARK(BM_MergeDatapaths);

void
BM_RewriteRuleLibrary(benchmark::State &state)
{
    const pe::PeSpec spec = pe::baselinePe();
    mapper::RewriteRuleSynthesizer synth(spec);
    for (auto _ : state) {
        auto rules = synth.synthesizeLibrary({});
        benchmark::DoNotOptimize(rules);
    }
}
BENCHMARK(BM_RewriteRuleLibrary);

void
BM_InstructionSelectCamera(benchmark::State &state)
{
    const auto app = apps::cameraPipeline(1);
    const pe::PeSpec spec = pe::baselinePe();
    mapper::RewriteRuleSynthesizer synth(spec);
    mapper::InstructionSelector selector(synth.synthesizeLibrary({}));
    for (auto _ : state) {
        auto result = selector.map(app.graph);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_InstructionSelectCamera);

void
BM_PlaceAndRouteCamera(benchmark::State &state)
{
    const auto app = apps::cameraPipeline(2);
    const pe::PeSpec spec = pe::baselinePe();
    mapper::RewriteRuleSynthesizer synth(spec);
    mapper::InstructionSelector selector(synth.synthesizeLibrary({}));
    const auto sel = selector.map(app.graph);
    const cgra::Fabric fabric(32, 16);
    for (auto _ : state) {
        auto placement = cgra::place(fabric, sel.mapped);
        auto routing = cgra::route(fabric, placement);
        benchmark::DoNotOptimize(routing);
    }
}
BENCHMARK(BM_PlaceAndRouteCamera);

void
BM_FullFlowGaussian(benchmark::State &state)
{
    core::Explorer ex;
    const auto app = apps::gaussianBlur(4);
    const auto variant = ex.specVariant(app);
    const auto &tech = model::defaultTech();
    for (auto _ : state) {
        auto r = core::evaluate(app, variant,
                                core::EvalLevel::kPostPipelining,
                                tech);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_FullFlowGaussian);

} // namespace

BENCHMARK_MAIN();
