/**
 * Table 2: performance of camera pipeline on a CGRA per PE variant —
 * #PEs, area/PE, total PE area, and frames/ms/mm^2 for a 1920x1080
 * frame (post-pipelining flow; the paper clocks at 1.1 ns).
 * Paper shape: 4x performance-per-area from PE Base to PE 4, driven
 * by the drop in total PE area.
 */
#include "bench/common.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;
    const auto app = apps::cameraPipeline();

    bench::header("Table 2: camera pipeline performance per mm^2");
    std::printf("  %-10s %6s %14s %16s %12s %18s\n", "variant",
                "#PE", "area/PE(um2)", "total area(um2)",
                "period(ns)", "perf(frames/ms/mm2)");

    struct Row {
        std::string label;
        core::PeVariant variant;
    };
    std::vector<Row> rows;
    rows.push_back({"PE Base", ex.baselineVariant()});
    rows.push_back({"PE 1", ex.subsetVariant(app)});
    for (int k = 1; k <= 3; ++k) {
        rows.push_back({"PE " + std::to_string(k + 1),
                        ex.specializedVariant(app, k)});
    }

    double base_perf = 0.0, last_perf = 0.0;
    for (const Row &row : rows) {
        const auto r =
            bench::evalOrWarn(app, row.variant,
                              core::EvalLevel::kPostPipelining,
                              tech);
        if (!r.success)
            continue;
        // Table 2 normalizes by the *total PE area* column (the
        // interconnect is shared across variants).
        const double perf =
            1.0 / (r.runtime_ms * r.pe_area * 1e-6);
        std::printf("  %-10s %6d %14.2f %16.0f %12.2f %18.3f\n",
                    row.label.c_str(), r.pe_count,
                    r.pe_area / r.pe_count, r.pe_area, r.period_ns,
                    perf);
        if (row.label == "PE Base")
            base_perf = perf;
        last_perf = perf;
    }

    if (base_perf > 0.0) {
        std::printf("\n  perf/mm^2 gain baseline -> most "
                    "specialized: %.2fx\n",
                    last_perf / base_perf);
    }
    bench::note("paper (Table 2): 988.81 um2/PE baseline, 4.0x "
                "perf/mm2 gain from PE Base to PE 4");
    return 0;
}
