/**
 * Table 3: post-pipelining CGRA resource utilization per application
 * and PE variant: #PE, #MEM, #RF (register-file FIFO slots), #IO,
 * #Reg (interconnect pipeline registers), and routing-only tiles.
 */
#include "bench/common.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    bench::header("Table 3: post-pipelining resource utilization");
    const core::PeVariant base = ex.baselineVariant();
    const core::PeVariant pe_ip =
        ex.domainVariant(apps::ipApps(), 1, "pe_ip");
    const core::PeVariant pe_ml =
        ex.domainVariant(apps::mlApps(), 1, "pe_ml");

    std::printf("  %-10s %-8s %6s %6s %6s %6s %6s %14s\n", "app",
                "variant", "#PE", "#MEM", "#RF", "#IO", "#Reg",
                "#RoutingTiles");

    auto report = [&](const apps::AppInfo &app,
                      const core::PeVariant &v, const char *label) {
        const auto r = bench::evalOrWarn(
            app, v, core::EvalLevel::kPostPipelining, tech);
        if (!r.success)
            return;
        std::printf("  %-10s %-8s %6d %6d %6d %6d %6d %14d\n",
                    app.name.c_str(), label, r.util.pes,
                    r.util.mems, r.util.rf_entries, r.util.ios,
                    r.util.regs, r.util.routing_tiles);
    };

    for (const apps::AppInfo &app : apps::analyzedApps()) {
        const bool is_ip =
            app.domain == apps::Domain::kImageProcessing;
        report(app, base, "base");
        report(app, is_ip ? pe_ip : pe_ml,
               is_ip ? "pe_ip" : "pe_ml");
        report(app, core::bestSpecializedVariant(app, ex, tech),
               "spec");
    }
    bench::note("paper (Table 3): e.g. camera 232 PEs baseline -> "
                "196 (PE IP) -> 152 (PE Spec); unsharp uses 180 RF "
                "entries");
    return 0;
}
