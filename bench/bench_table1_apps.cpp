/**
 * Table 1: the application suite used for the DSE evaluation, with
 * the measured dataflow-graph statistics of this reproduction's
 * Halide-substitute kernels.
 */
#include "bench/common.hpp"

int
main()
{
    using namespace apex;
    bench::header("Table 1: applications");
    std::printf("  %-12s %-3s %-44s %8s %6s %6s\n", "app", "dom",
                "description", "compute", "mems", "I/O");
    for (const apps::AppInfo &app : apps::allApps()) {
        int ios = 0;
        for (ir::NodeId id = 0; id < app.graph.size(); ++id) {
            const ir::Op op = app.graph.op(id);
            ios += op == ir::Op::kInput || op == ir::Op::kInputBit ||
                   op == ir::Op::kOutput || op == ir::Op::kOutputBit;
        }
        std::printf("  %-12s %-3s %-44s %8zu %6zu %6d%s\n",
                    app.name.c_str(),
                    app.domain == apps::Domain::kImageProcessing
                        ? "IP"
                        : "ML",
                    app.description.c_str(),
                    app.graph.computeNodes().size(),
                    app.graph.nodesWithOp(ir::Op::kMem).size(), ios,
                    app.unseen ? "  (held out, Fig. 13)" : "");
    }
    bench::note("paper: 6 analyzed apps (4 IP + 2 ML); this repo "
                "adds the 3 held-out apps of Fig. 13");
    return 0;
}
