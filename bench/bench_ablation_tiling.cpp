/**
 * Ablation: instruction-selection policy.  The paper uses greedy
 * maximal-munch tiling (Sec. 4.1.2, after LLVM); the library also
 * implements a min-cost DP tiler (optimal PE count on expression
 * trees).  Compare PE counts and mapped PE area across the suite on
 * the domain PEs — how much does the paper's greedy policy leave on
 * the table?
 */
#include "bench/common.hpp"
#include "mapper/rewrite.hpp"
#include "mapper/select.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    bench::header("Ablation: greedy vs min-cost DP tiling");
    const core::PeVariant pe_ip =
        ex.domainVariant(apps::ipApps(), 1, "pe_ip");
    const core::PeVariant pe_ml =
        ex.domainVariant(apps::mlApps(), 1, "pe_ml");

    std::printf("  %-10s %12s %12s %10s\n", "app", "greedy #PE",
                "min-cost #PE", "delta");
    for (const apps::AppInfo &app : apps::analyzedApps()) {
        const core::PeVariant &v =
            app.domain == apps::Domain::kImageProcessing ? pe_ip
                                                         : pe_ml;
        mapper::RewriteRuleSynthesizer synth(v.spec);
        const auto rules = synth.synthesizeLibrary(v.patterns);

        mapper::InstructionSelector greedy(
            rules, mapper::SelectionPolicy::kGreedyLargestFirst);
        mapper::InstructionSelector dp(
            rules, mapper::SelectionPolicy::kMinCost);
        const auto rg = greedy.map(app.graph);
        const auto rd = dp.map(app.graph);
        if (!rg.success || !rd.success) {
            std::printf("  %-10s FAILED (%s)\n", app.name.c_str(),
                        (rg.success ? rd.error : rg.error).c_str());
            continue;
        }
        std::printf("  %-10s %12d %12d %9.1f%%\n", app.name.c_str(),
                    rg.peCount(), rd.peCount(),
                    bench::pct(rd.peCount(), rg.peCount()));
    }
    (void)tech;
    bench::note("DP tiling is never worse; gains concentrate where "
                "the greedy policy strands single ops between "
                "overlapping multi-op rule sites");
    return 0;
}
