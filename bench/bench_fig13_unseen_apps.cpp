/**
 * Fig. 13: domain generalization — the baseline PE vs PE IP on three
 * applications *not* analyzed when PE IP was generated (Laplacian
 * pyramid, stereo, FAST corner).
 * Paper shape: PE IP still wins clearly (-12%..-25% area,
 * -66%..-78% energy), showing domain rather than per-app
 * specialization.
 */
#include "bench/common.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    bench::header("Fig. 13: unseen applications on PE IP");
    const core::PeVariant base = ex.baselineVariant();
    const core::PeVariant pe_ip =
        ex.domainVariant(apps::ipApps(), 1, "pe_ip");

    std::printf("  %-10s %-8s %6s %14s %14s\n", "app", "variant",
                "#PE", "area(um2)", "energy(pJ/px)");
    for (const apps::AppInfo &app : apps::unseenApps()) {
        const auto rb = bench::evalOrWarn(
            app, base, core::EvalLevel::kPostMapping, tech);
        const auto ri = bench::evalOrWarn(
            app, pe_ip, core::EvalLevel::kPostMapping, tech);
        if (!rb.success || !ri.success)
            continue;
        std::printf("  %-10s %-8s %6d %14.0f %14.2f\n",
                    app.name.c_str(), "base", rb.pe_count,
                    rb.pe_area, rb.pe_energy);
        std::printf("  %-10s %-8s %6d %14.0f %14.2f   "
                    "(area %+.1f%%, energy %+.1f%%)\n",
                    app.name.c_str(), "pe_ip", ri.pe_count,
                    ri.pe_area, ri.pe_energy,
                    bench::pct(ri.pe_area, rb.pe_area),
                    bench::pct(ri.pe_energy, rb.pe_energy));
    }
    bench::note("paper: -12%..-25% area, -66%..-78% energy on "
                "unseen apps");
    return 0;
}
