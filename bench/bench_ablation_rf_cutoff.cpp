/**
 * Ablation: register-chain -> register-file cutoff (Sec. 4.3: "the
 * designer can adjust the cutoff point").  Sweep the cutoff on a
 * pipelined application and report interconnect registers vs RF
 * slots — the trade the paper's Fig. 9 transformation manages.
 */
#include "bench/common.hpp"
#include "mapper/rewrite.hpp"
#include "mapper/select.hpp"
#include "pe/baseline.hpp"
#include "pipeline/app_pipeline.hpp"
#include "pipeline/pe_pipeline.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();

    bench::header("Ablation: RF-FIFO substitution cutoff (Fig. 9)");

    const auto app = apps::unsharp();
    pe::PeSpec spec = pe::baselinePe();
    mapper::RewriteRuleSynthesizer synth(spec);
    mapper::InstructionSelector selector(synth.synthesizeLibrary({}));
    const auto base_sel = selector.map(app.graph);
    if (!base_sel.success) {
        std::printf("  mapping failed: %s\n", base_sel.error.c_str());
        return 1;
    }
    pipeline::pipelinePe(spec, tech);

    std::printf("  %-8s %8s %8s %10s %12s\n", "cutoff", "#Reg",
                "#RF", "RF slots", "balanced?");
    for (int cutoff = 1; cutoff <= 8; ++cutoff) {
        auto mapped = base_sel.mapped; // fresh copy per sweep point
        pipeline::AppPipelineOptions options;
        options.rf_cutoff = cutoff;
        pipeline::pipelineApplication(&mapped, spec.pipeline_stages,
                                      options);
        int rf_nodes = 0, rf_slots = 0;
        for (const auto &n : mapped.nodes) {
            if (n.kind == mapper::MappedKind::kRegFile) {
                ++rf_nodes;
                rf_slots += n.depth;
            }
        }
        std::printf("  %-8d %8d %8d %10d %12s\n", cutoff,
                    mapped.count(mapper::MappedKind::kReg), rf_nodes,
                    rf_slots,
                    pipeline::delaysBalanced(mapped,
                                             spec.pipeline_stages)
                        ? "yes"
                        : "NO");
    }

    // No-RF configuration: everything stays in the interconnect.
    {
        auto mapped = base_sel.mapped;
        pipeline::AppPipelineOptions options;
        options.use_register_files = false;
        pipeline::pipelineApplication(&mapped, spec.pipeline_stages,
                                      options);
        std::printf("  %-8s %8d %8d %10d %12s\n", "off",
                    mapped.count(mapper::MappedKind::kReg), 0, 0,
                    pipeline::delaysBalanced(mapped,
                                             spec.pipeline_stages)
                        ? "yes"
                        : "NO");
    }
    bench::note("low cutoffs drain the interconnect registers into "
                "PE-tile register files (better routability); high "
                "cutoffs leave short chains on the tracks; "
                "functional latency is preserved at every point");
    return 0;
}
