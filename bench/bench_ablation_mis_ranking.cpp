/**
 * Ablation: is maximal-independent-set ranking actually the right
 * signal for picking subgraphs (Sec. 3.2's claim)?  Compare PEs built
 * from the top-2 patterns under three rankings:
 *   - MIS size (the paper's choice),
 *   - raw frequency (ignores overlap),
 *   - pattern size (biggest subgraph first).
 * Metric: post-mapping PE count / area / energy of the application.
 */
#include <algorithm>
#include <functional>

#include "bench/common.hpp"
#include "merging/merge.hpp"
#include "mining/miner.hpp"
#include "pe/baseline.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    bench::header("Ablation: subgraph ranking signal (Sec. 3.2)");
    std::printf("  %-10s %-10s %6s %14s %14s\n", "app", "ranking",
                "#PE", "area(um2)", "energy(pJ/it)");

    for (const auto &app :
         {apps::cameraPipeline(), apps::harrisCorner(),
          apps::mobilenetLayer()}) {
        auto patterns = ex.analyze(app.graph);
        if (patterns.size() < 2)
            continue;

        struct Ranking {
            const char *name;
            std::function<bool(const mining::MinedPattern &,
                               const mining::MinedPattern &)> less;
        };
        const Ranking rankings[] = {
            {"mis", [](const auto &a, const auto &b) {
                 return a.mis_size > b.mis_size;
             }},
            {"frequency", [](const auto &a, const auto &b) {
                 return a.frequency > b.frequency;
             }},
            {"size", [](const auto &a, const auto &b) {
                 return a.core_size > b.core_size;
             }},
        };

        for (const Ranking &ranking : rankings) {
            auto ordered = patterns;
            std::stable_sort(ordered.begin(), ordered.end(),
                             ranking.less);
            core::PeVariant v;
            v.name = std::string("pe_") + ranking.name;
            for (int i = 0; i < 2; ++i)
                v.patterns.push_back(ordered[i].pattern);
            const pe::PeSpec seed = pe::baselineSubsetPe(
                pe::opsUsedBy(app.graph), v.name);
            const auto mm = merging::mergeIntoDatapath(
                seed.dp, v.patterns, tech, nullptr);
            v.spec = pe::makePeSpec(mm.merged, v.name);

            const auto r = bench::evalOrWarn(
                app, v, core::EvalLevel::kPostMapping, tech);
            if (!r.success)
                continue;
            std::printf("  %-10s %-10s %6d %14.0f %14.2f\n",
                        app.name.c_str(), ranking.name, r.pe_count,
                        r.pe_area, r.pe_energy);
        }
    }
    bench::note("expected: MIS-ranked subgraphs give the fewest PEs "
                "for the area spent — overlapping occurrences "
                "(counted by raw frequency) cannot all be "
                "accelerated");
    return 0;
}
