/**
 * Fig. 16: pre- vs post-pipelining area, energy and performance/mm^2
 * for baseline / PE IP / PE ML / PE Spec across all six analyzed
 * applications.
 * Paper shape: pipelining slashes the clock period (large perf/mm^2
 * gains, 6.9x-12.5x for PE IP) at a modest register/RF area cost;
 * performance itself is mostly unaffected by specialization.
 */
#include "bench/common.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    bench::header("Fig. 16: pre- vs post-pipelining");
    const core::PeVariant base = ex.baselineVariant();
    const core::PeVariant pe_ip =
        ex.domainVariant(apps::ipApps(), 1, "pe_ip");
    const core::PeVariant pe_ml =
        ex.domainVariant(apps::mlApps(), 1, "pe_ml");

    std::printf("  %-10s %-8s %7s %12s %12s %12s %14s %8s\n", "app",
                "variant", "stage", "period(ns)", "cgraA(um2)",
                "E(pJ/item)", "perf(f/ms/mm2)", "gain");

    for (const apps::AppInfo &app : apps::analyzedApps()) {
        const bool is_ip =
            app.domain == apps::Domain::kImageProcessing;
        const core::PeVariant &domain = is_ip ? pe_ip : pe_ml;
        const core::PeVariant spec =
            core::bestSpecializedVariant(app, ex, tech);

        struct Entry {
            const core::PeVariant *v;
            const char *label;
        };
        const Entry entries[] = {
            {&base, "base"},
            {&domain, is_ip ? "pe_ip" : "pe_ml"},
            {&spec, "spec"},
        };
        for (const Entry &e : entries) {
            const auto pre = bench::evalOrWarn(
                app, *e.v, core::EvalLevel::kPostPnr, tech);
            const auto post = bench::evalOrWarn(
                app, *e.v, core::EvalLevel::kPostPipelining, tech);
            if (!pre.success || !post.success)
                continue;
            // Pre-pipelining performance: same fabric, combinational
            // period.
            const double pre_runtime =
                (app.work_items_per_frame / app.items_per_cycle) *
                pre.period_ns * 1e-6;
            const double pre_perf =
                1.0 / (pre_runtime * pre.cgra_area * 1e-6);
            std::printf("  %-10s %-8s %3d->%-2d %5.2f->%-5.2f "
                        "%5.0fk->%-5.0fk %5.1f->%-5.1f %6.3f->%-6.3f "
                        "%6.2fx\n",
                        app.name.c_str(), e.label, 1,
                        std::max(post.pipeline_stages, 1),
                        pre.period_ns, post.period_ns,
                        pre.cgra_area / 1000.0,
                        post.cgra_area / 1000.0, pre.cgra_energy,
                        post.cgra_energy, pre_perf,
                        post.frames_per_ms_mm2,
                        post.frames_per_ms_mm2 / pre_perf);
        }
    }
    bench::note("paper: 6.9x-12.5x perf/mm2 gain for PE IP apps "
                "from PE+application pipelining");
    return 0;
}
