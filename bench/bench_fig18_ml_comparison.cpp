/**
 * Fig. 18: ML applications (ResNet / MobileNet layer) on an FPGA,
 * the baseline CGRA, CGRA-ML, and the Simba accelerator (analytical
 * comparator anchored at ~16x below CGRA-ML on ResNet; Sec. 5.4.2).
 * Paper shape: CGRA-ML ~14x less energy than the FPGA on ResNet and
 * approaches (within ~16x of) Simba while staying configurable.
 */
#include "bench/common.hpp"
#include "model/comparators.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    bench::header("Fig. 18: ML apps — FPGA / CGRA / CGRA-ML / Simba");
    const core::PeVariant base = ex.baselineVariant();
    const core::PeVariant pe_ml =
        ex.domainVariant(apps::mlApps(), 1, "pe_ml");

    std::printf("  %-10s %-10s %14s %14s\n", "app", "platform",
                "energy(uJ)", "runtime(ms)");

    for (const apps::AppInfo &app : apps::mlApps()) {
        const auto rb = bench::evalOrWarn(
            app, base, core::EvalLevel::kPostPipelining, tech);
        const auto rm = bench::evalOrWarn(
            app, pe_ml, core::EvalLevel::kPostPipelining, tech);
        if (!rb.success || !rm.success)
            continue;

        const auto fpga =
            model::fpgaEstimate(rb.op_events, rb.runtime_ms);
        const auto simba = model::simbaEstimate(
            rm.total_energy_uj, rm.runtime_ms);

        std::printf("  %-10s %-10s %14.2f %14.3f\n",
                    app.name.c_str(), "fpga", fpga.energy_uj,
                    fpga.runtime_ms);
        std::printf("  %-10s %-10s %14.2f %14.3f\n",
                    app.name.c_str(), "cgra-base",
                    rb.total_energy_uj, rb.runtime_ms);
        std::printf("  %-10s %-10s %14.2f %14.3f\n",
                    app.name.c_str(), "cgra-ml",
                    rm.total_energy_uj, rm.runtime_ms);
        std::printf("  %-10s %-10s %14.2f %14.3f\n",
                    app.name.c_str(), "simba", simba.energy_uj,
                    simba.runtime_ms);
        std::printf("  %-10s ratios: fpga/cgra-ml=%.1fx, "
                    "cgra-ml/simba=%.1fx\n",
                    app.name.c_str(),
                    fpga.energy_uj / rm.total_energy_uj,
                    rm.total_energy_uj / simba.energy_uj);
    }
    bench::note("paper: CGRA-ML 14x below FPGA on ResNet; Simba 16x "
                "below CGRA-ML");
    return 0;
}
