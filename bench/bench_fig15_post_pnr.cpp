/**
 * Fig. 15: post-place-and-route comparison including interconnect —
 * switch-box and connection-box area/energy, memory tiles, and the
 * total CGRA footprint, for baseline / PE IP / PE ML / PE Spec.
 * Paper shape: fewer tiles => less SB area/energy everywhere; CB
 * area can *increase* for specialized PEs with more inputs (Harris);
 * ML apps -22%..-39% area, -16%..-59% energy overall.
 */
#include "bench/common.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    bench::header("Fig. 15: post-place-and-route comparison");
    const core::PeVariant base = ex.baselineVariant();
    const core::PeVariant pe_ip =
        ex.domainVariant(apps::ipApps(), 1, "pe_ip");
    const core::PeVariant pe_ml =
        ex.domainVariant(apps::mlApps(), 1, "pe_ml");

    std::printf("  %-10s %-8s %10s %10s %10s %12s %12s %10s\n",
                "app", "variant", "sbA(um2)", "cbA(um2)",
                "memA(um2)", "cgraA(um2)", "cgraE(pJ/it)",
                "dE%");

    for (const apps::AppInfo &app : apps::analyzedApps()) {
        const bool is_ip =
            app.domain == apps::Domain::kImageProcessing;
        const core::PeVariant &domain = is_ip ? pe_ip : pe_ml;
        const core::PeVariant spec =
            core::bestSpecializedVariant(app, ex, tech);

        const auto rb = bench::evalOrWarn(
            app, base, core::EvalLevel::kPostPnr, tech);
        if (!rb.success)
            continue;
        std::printf("  %-10s %-8s %10.0f %10.0f %10.0f %12.0f "
                    "%12.2f %10s\n",
                    app.name.c_str(), "base", rb.sb_area,
                    rb.cb_area, rb.mem_area, rb.cgra_area,
                    rb.cgra_energy, "-");
        for (const auto *v : {&domain, &spec}) {
            const auto r = bench::evalOrWarn(
                app, *v, core::EvalLevel::kPostPnr, tech);
            if (!r.success)
                continue;
            std::printf("  %-10s %-8s %10.0f %10.0f %10.0f %12.0f "
                        "%12.2f %+9.1f%%\n",
                        app.name.c_str(),
                        v == &spec ? "spec"
                                   : (is_ip ? "pe_ip" : "pe_ml"),
                        r.sb_area, r.cb_area, r.mem_area,
                        r.cgra_area, r.cgra_energy,
                        bench::pct(r.cgra_energy, rb.cgra_energy));
        }
    }
    bench::note("paper: SB area/energy shrink with tile count; CB "
                "area can grow for many-input specialized PEs "
                "(Harris +44% CB area); ML: -22..-39% area, "
                "-16..-59% energy");
    return 0;
}
