/**
 * Fig. 17: energy and runtime of the four IP applications on an
 * FPGA, the baseline CGRA, the CGRA with PE IP, and an ASIC.
 * The FPGA/ASIC comparators are analytical models anchored to the
 * paper's ratios (see model/comparators.hpp and DESIGN.md).
 * Paper shape: CGRA-IP is 38x-159x more energy-efficient than the
 * FPGA, 18%-47% better than the baseline CGRA, and approaches the
 * ASIC; runtimes are ASIC-comparable.
 */
#include "bench/common.hpp"
#include "model/comparators.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    bench::header("Fig. 17: FPGA vs CGRA vs CGRA-IP vs ASIC");
    const core::PeVariant base = ex.baselineVariant();
    const core::PeVariant pe_ip =
        ex.domainVariant(apps::ipApps(), 1, "pe_ip");

    std::printf("  %-10s %-10s %14s %14s\n", "app", "platform",
                "energy(uJ)", "runtime(ms)");

    for (const apps::AppInfo &app : apps::ipApps()) {
        const auto rb = bench::evalOrWarn(
            app, base, core::EvalLevel::kPostPipelining, tech);
        const auto ri = bench::evalOrWarn(
            app, pe_ip, core::EvalLevel::kPostPipelining, tech);
        if (!rb.success || !ri.success)
            continue;

        const auto fpga =
            model::fpgaEstimate(rb.op_events, rb.runtime_ms);
        const auto asic = model::asicEstimate(
            rb.raw_compute_energy_uj, ri.runtime_ms);

        std::printf("  %-10s %-10s %14.1f %14.3f\n",
                    app.name.c_str(), "fpga", fpga.energy_uj,
                    fpga.runtime_ms);
        std::printf("  %-10s %-10s %14.1f %14.3f\n",
                    app.name.c_str(), "cgra-base",
                    rb.total_energy_uj, rb.runtime_ms);
        std::printf("  %-10s %-10s %14.1f %14.3f\n",
                    app.name.c_str(), "cgra-ip",
                    ri.total_energy_uj, ri.runtime_ms);
        std::printf("  %-10s %-10s %14.1f %14.3f\n",
                    app.name.c_str(), "asic", asic.energy_uj,
                    asic.runtime_ms);
        std::printf("  %-10s ratios: fpga/cgra-ip=%.0fx, "
                    "cgra-ip/asic=%.1fx, base/ip=%.2fx\n",
                    app.name.c_str(),
                    fpga.energy_uj / ri.total_energy_uj,
                    ri.total_energy_uj / asic.energy_uj,
                    rb.total_energy_uj / ri.total_energy_uj);
    }
    bench::note("paper: CGRA-IP 38x-159x less energy than FPGA, "
                "18-47% less than baseline CGRA, runtime "
                "ASIC-comparable");
    return 0;
}
