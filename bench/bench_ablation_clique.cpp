/**
 * Ablation: exact vs greedy maximum-weight clique in datapath
 * merging (Sec. 3.3).  The merge quality (area saved) depends on the
 * clique solver; this bench merges the top domain subgraphs with the
 * exact branch-and-bound and with the greedy heuristic only (node
 * budget 1 keeps just the greedy seed), reporting saved area and the
 * merged datapath's functional area.
 */
#include "bench/common.hpp"
#include "merging/merge.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    bench::header("Ablation: clique solver in datapath merging");
    std::printf("  %-10s %-8s %14s %16s %10s\n", "app", "solver",
                "saved(um2)", "merged area", "optimal");

    for (const auto &app :
         {apps::cameraPipeline(), apps::harrisCorner(),
          apps::resnetLayer()}) {
        auto patterns = ex.analyze(app.graph);
        std::vector<ir::Graph> graphs;
        for (std::size_t i = 0;
             i < std::min<std::size_t>(4, patterns.size()); ++i)
            graphs.push_back(patterns[i].pattern);
        if (graphs.size() < 2)
            continue;

        merging::MergeOptions exact;
        merging::MergeOptions greedy;
        greedy.clique_budget = 1; // keep only the greedy seed

        const auto r_exact =
            merging::mergePatterns(graphs, tech, exact);
        const auto r_greedy =
            merging::mergePatterns(graphs, tech, greedy);

        std::printf("  %-10s %-8s %14.1f %16.1f %10s\n",
                    app.name.c_str(), "exact", r_exact.saved_area,
                    r_exact.merged.functionalArea(tech), "yes");
        std::printf("  %-10s %-8s %14.1f %16.1f %10s\n",
                    app.name.c_str(), "greedy", r_greedy.saved_area,
                    r_greedy.merged.functionalArea(tech), "no");
    }
    bench::note("exact clique never saves less than greedy; the gap "
                "is the price of a heuristic merge (Moreano et al. "
                "report the same effect for HLS datapath merging)");
    return 0;
}
