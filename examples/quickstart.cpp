/**
 * Quickstart: the Sec. 3 walk-through on the Fig. 3 convolution.
 *
 *  1. Build the dataflow graph of an unrolled convolution.
 *  2. Mine its frequent subgraphs (Fig. 3) and rank them by maximal-
 *     independent-set size (Fig. 4).
 *  3. Merge the top subgraphs into one datapath (Fig. 5).
 *  4. Turn the datapath into a PE specification, synthesize rewrite
 *     rules, and map the application onto the new PE.
 *  5. Emit the PE's Verilog.
 *
 * Run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "ir/builder.hpp"
#include "ir/dot.hpp"
#include "mapper/select.hpp"
#include "merging/merge.hpp"
#include "mining/miner.hpp"
#include "model/tech.hpp"
#include "pe/baseline.hpp"
#include "pe/verilog.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();

    // 1. The Fig. 3 convolution:
    //    ((((i0*w0 + i1*w1) + i2*w2) + i3*w3) + c).
    ir::GraphBuilder b;
    std::vector<ir::Value> ins, ws;
    for (int i = 0; i < 4; ++i) {
        ins.push_back(b.input("i" + std::to_string(i)));
        ws.push_back(b.constant(2 * i + 1, "w" + std::to_string(i)));
    }
    ir::Value acc = b.mul(ins[0], ws[0]);
    for (int i = 1; i < 4; ++i)
        acc = b.add(acc, b.mul(ins[i], ws[i]));
    acc = b.add(acc, b.constant(7, "c"));
    b.output(acc, "out");
    const ir::Graph app = b.take();

    std::printf("== application graph (%zu nodes) ==\n%s\n",
                app.size(), ir::toDot(app, "conv").c_str());

    // 2. Frequent subgraph mining + MIS ranking.
    mining::FrequentSubgraphMiner miner(
        {.min_support = 2, .max_pattern_nodes = 3});
    auto patterns = miner.mine(app);
    mining::rankPatterns(patterns);
    std::printf("== mined %zu patterns (top 5 by MIS) ==\n",
                patterns.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(5, patterns.size());
         ++i) {
        const auto &p = patterns[i];
        std::printf("  #%zu: %d nodes, frequency %d, MIS %d\n", i,
                    p.core_size, p.frequency, p.mis_size);
    }

    // 3. Merge the two top multi-node patterns into one datapath.
    std::vector<ir::Graph> to_merge;
    for (const auto &p : patterns) {
        if (p.core_size >= 2 && to_merge.size() < 2)
            to_merge.push_back(p.pattern);
    }
    const auto merged = merging::mergePatterns(to_merge, tech);
    std::printf("\n== merged datapath: %zu nodes, saved %.1f um^2 ==\n",
                merged.merged.nodes.size(), merged.saved_area);

    // 4. PE spec + compiler + mapping.
    const pe::PeSpec seed = pe::baselineSubsetPe(
        pe::opsUsedBy(app), "pe_quickstart");
    const auto grown = merging::mergeIntoDatapath(
        seed.dp, to_merge, tech, nullptr);
    const pe::PeSpec spec =
        pe::makePeSpec(grown.merged, "pe_quickstart");
    std::printf("%s\n", pe::describe(spec, tech).c_str());

    mapper::RewriteRuleSynthesizer synth(spec);
    mapper::InstructionSelector selector(
        synth.synthesizeLibrary(to_merge));
    const auto sel = selector.map(app);
    if (!sel.success) {
        std::printf("mapping failed: %s\n", sel.error.c_str());
        return 1;
    }
    std::printf("== mapped: %d PEs for %zu compute ops ==\n",
                sel.peCount(), app.computeNodes().size());

    // Functional check: mapped graph == interpreter.
    const auto got = mapper::executeMapped(
        sel.mapped, selector.rules(), spec, {10, 20, 30, 40});
    std::printf("conv(10,20,30,40) on the CGRA PE = %llu\n",
                static_cast<unsigned long long>(got.at(0)));

    // 5. RTL.
    std::printf("\n== Verilog (first lines) ==\n");
    const std::string verilog = pe::emitVerilog(spec);
    std::printf("%s...\n", verilog.substr(0, 600).c_str());
    return 0;
}
