/**
 * apexd — the APEX DSE service daemon.
 *
 * Usage:
 *   apexd --socket PATH [--tcp-port N] [--executors N] [--jobs N]
 *         [--queue-depth N] [--cache-dir DIR]
 *         [--mem-budget BYTES] [--session-cap N]
 *         [--retry-after-ms MS]
 *         [--metrics-out FILE [--metrics-interval MS]]
 *         [--log-out FILE] [--log-level debug|info|warn|error]
 *         [--statusz-interval-ms MS]
 *         [--admission-hold-ms MS]
 *   apexd --version
 *
 * The daemon loads the application set once, keeps the
 * content-addressed artifact cache hot across requests, and serves
 * sweep / info / metrics requests from `apexc client ...` over a
 * Unix-domain socket (optionally TCP on 127.0.0.1).  Identical
 * concurrent sweep requests coalesce onto one execution; a full
 * admission queue rejects with an explicit frame (see
 * src/service/server.hpp and DESIGN.md Sec. 7g).
 *
 * SIGTERM / SIGINT shut down gracefully: listeners close, queued
 * requests are abandoned, running sweeps cancel cooperatively (their
 * subscribers receive a cancelled report), and every thread is
 * joined before exit.
 *
 * Resource exhaustion (DESIGN.md Sec. 7h): --mem-budget BYTES sheds
 * new sweeps while undelivered reply bytes exceed the budget,
 * --session-cap N bounds sweeps in flight per client session, and
 * every shedding reject carries a --retry-after-ms readmission hint
 * that a self-healing client honors.  EMFILE/ENFILE on accept pauses
 * the listeners with exponential backoff instead of spinning.
 *
 * --metrics-out FILE dumps the telemetry registry on exit;
 * --metrics-interval MS also rewrites it periodically (atomic
 * rename), so `apex.service.*` counters are observable while the
 * daemon runs.  --admission-hold-ms is a test knob that widens the
 * coalescing window deterministically; leave it 0 in production.
 *
 * Observability (DESIGN.md Sec. 7i): tracing is always on in the
 * daemon — every span carries its request's trace id, and `apexc
 * client sweep --trace` fetches the slice for its own request.
 * --log-out FILE appends structured JSONL events (level, component,
 * message, trace_id); --log-level sets the threshold (default info).
 * Without --log-out, events still reach stderr.  `apexc client top`
 * reads the statusz vitals ring, sampled every
 * --statusz-interval-ms (default 1000).
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include <poll.h>

#include "runtime/eventlog.hpp"
#include "runtime/telemetry.hpp"
#include "service/server.hpp"
#include "service/version.hpp"

namespace {

using namespace apex;

/** SIGTERM/SIGINT latch; the main thread polls it. */
volatile std::sig_atomic_t g_shutdown = 0;

extern "C" void
onShutdown(int /*signum*/)
{
    g_shutdown = 1;
}

const char *
flagValue(int argc, char **argv, const char *flag)
{
    for (int i = 0; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 0; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    if (hasFlag(argc, argv, "--version")) {
        std::printf("%s\n", service::versionString().c_str());
        return 0;
    }

    service::ServerOptions options;
    if (const char *s = flagValue(argc, argv, "--socket"))
        options.unix_path = s;
    if (options.unix_path.empty()) {
        std::fprintf(stderr,
                     "usage: apexd --socket PATH [--tcp-port N] "
                     "[--executors N] [--jobs N] [--queue-depth N] "
                     "[--cache-dir DIR] [--metrics-out FILE "
                     "[--metrics-interval MS]]\n");
        return 2;
    }
    if (const char *s = flagValue(argc, argv, "--tcp-port"))
        options.tcp_port = std::atoi(s);
    if (const char *s = flagValue(argc, argv, "--executors"))
        options.executors = std::atoi(s);
    if (const char *s = flagValue(argc, argv, "--jobs"))
        options.jobs = std::atoi(s);
    if (const char *s = flagValue(argc, argv, "--queue-depth"))
        options.queue_depth =
            static_cast<std::size_t>(std::atoi(s));
    if (const char *s = flagValue(argc, argv, "--cache-dir"))
        options.cache_dir = s;
    if (const char *s = flagValue(argc, argv, "--mem-budget"))
        options.mem_budget_bytes =
            static_cast<std::size_t>(std::atoll(s));
    if (const char *s = flagValue(argc, argv, "--session-cap"))
        options.session_cap = std::atoi(s);
    if (const char *s = flagValue(argc, argv, "--retry-after-ms"))
        options.retry_after_ms = std::atof(s);
    if (const char *s = flagValue(argc, argv, "--admission-hold-ms"))
        options.admission_hold_ms = std::atof(s);
    if (const char *s =
            flagValue(argc, argv, "--statusz-interval-ms"))
        options.statusz_interval_ms = std::atof(s);

    // Structured event log: episodes (admission saturation, accept
    // exhaustion, cache tier flips) as JSONL, correlated by trace id.
    eventlog::Options log_options;
    if (const char *s = flagValue(argc, argv, "--log-out"))
        log_options.path = s;
    if (const char *s = flagValue(argc, argv, "--log-level")) {
        if (!eventlog::parseLevel(s, &log_options.level)) {
            std::fprintf(stderr,
                         "apexd: unknown --log-level '%s' (expected "
                         "debug, info, warn or error)\n",
                         s);
            return 2;
        }
    }
    if (!eventlog::configure(log_options))
        return 2;

    // Tracing stays on for the daemon's lifetime: requests arrive at
    // any moment, and the per-request `trace` slice only exists if
    // spans were recorded when the request ran.  The collected-event
    // store is capped (oldest evicted), so this is bounded memory,
    // not a leak.
    telemetry::setTracingEnabled(true);

    const char *metrics_path = flagValue(argc, argv, "--metrics-out");
    std::unique_ptr<telemetry::PeriodicMetricsWriter> periodic;
    if (const char *s = flagValue(argc, argv, "--metrics-interval")) {
        if (metrics_path == nullptr) {
            std::fprintf(stderr,
                         "apexd: --metrics-interval requires "
                         "--metrics-out FILE\n");
            return 2;
        }
        periodic = std::make_unique<telemetry::PeriodicMetricsWriter>(
            metrics_path, std::atof(s));
    }

    // Handlers go in before start(): a SIGTERM racing the startup
    // work (app-set load, cache open) must still reach the graceful
    // path below — the loop checks the latch before napping, so a
    // signal during start() falls straight through to server.stop()
    // and the metrics flush.
    std::signal(SIGTERM, onShutdown);
    std::signal(SIGINT, onShutdown);

    service::Server server(options);
    if (const Status s = server.start(); !s.ok()) {
        std::fprintf(stderr, "apexd: %s\n", s.toString().c_str());
        return exitCodeFor(s.code());
    }
    std::fprintf(stderr, "apexd: %s\n",
                 service::versionString().c_str());
    std::fprintf(stderr, "apexd: listening on %s",
                 options.unix_path.c_str());
    if (server.tcpPort() > 0)
        std::fprintf(stderr, " and 127.0.0.1:%d", server.tcpPort());
    std::fprintf(stderr, "\n");

    while (g_shutdown == 0)
        ::poll(nullptr, 0, 200); // EINTR on a signal ends the nap.

    std::fprintf(stderr, "apexd: shutting down\n");
    server.stop();
    if (periodic != nullptr) {
        periodic.reset(); // Destructor = final flush.
    } else if (metrics_path != nullptr) {
        std::ofstream os(metrics_path, std::ios::binary);
        os << telemetry::Registry::instance().jsonDump();
    }
    eventlog::shutdown(); // Flush + close the log file.
    return 0;
}
