/**
 * apexc — command-line driver for the APEX flow.
 *
 * Usage:
 *   apexc apps
 *       List the built-in applications.
 *   apexc analyze <app|file.apexir> [--support N] [--max-nodes N]
 *       Mine + MIS-rank frequent subgraphs of an application.
 *   apexc explore <app> [--variant base|pe1|spec|ip|ml]
 *                       [--level map|pnr|pipe]
 *       Run the full flow and print the evaluation record.
 *   apexc rtl <app> [--variant ...] [-o DIR]
 *       Emit the PE's Verilog and a self-checking testbench.
 *   apexc dump <app> [-o FILE]
 *       Serialize an application graph to the apexir text format.
 *   apexc sweep [--level map|pnr|pipe] [--diagnostics]
 *               [--jobs N] [--cache-dir DIR] [--resume]
 *               [--deadline MS] [--cell-deadline MS]
 *               [--isolate thread|process] [--cell-retries N]
 *               [--miner-engine dfs|reference]
 *       Fault-tolerant evaluation of every built-in application
 *       across the variant recipe; failing pairs are reported and
 *       skipped rather than aborting the sweep.  --miner-engine
 *       (also accepted by analyze) selects the frequent-subgraph
 *       engine: the DFS-code/embedding-list miner (default) or the
 *       historic reference miner — outputs are byte-identical, so
 *       the flag exists for differential smoke and perf comparison.
 *   apexc client <sweep|info|metrics|top> --socket PATH [--port N]
 *       Run the request against a running apexd instead of in
 *       process.  `client sweep` accepts the sweep pressure and
 *       isolation flags (--level, --isolate, --cell-retries,
 *       --deadline, --cell-deadline, plus --priority N and
 *       --progress) and prints byte-identical stdout to the batch
 *       `apexc sweep` with the same flags — the daemon's resources
 *       are invisible in the bytes.  Progress frames and the
 *       coalescing verdict go to stderr.  With --trace FILE the
 *       request is traced end to end: the client mints a trace id,
 *       the daemon stamps it on every span the sweep records, and
 *       the written file merges the client's spans with the daemon's
 *       slice for *this* request (fetched via the v3 `trace`
 *       conversation) into one Chrome-trace file with client /
 *       apexd / worker process lanes.  `client top` renders the
 *       daemon's statusz vitals ring (sampled snapshots of sessions,
 *       queue depth, latency quantiles); --interval MS refreshes it
 *       live, --json prints the raw ring once for scripts.
 *   apexc --version
 *       Print the build commit, build type and protocol version.
 *
 * Telemetry (every command): --trace FILE records structured spans
 * for each pipeline stage and writes a Chrome trace-event JSON file
 * (load it in chrome://tracing or Perfetto); --metrics-out FILE dumps
 * the unified metrics registry (apex.* counters, gauges, latency
 * histograms) as JSON.  Both files are written after the command
 * finishes, whatever its exit code; --metrics-interval MS
 * additionally rewrites the metrics file periodically while the
 * command runs (atomic rename, so a watcher never reads a torn
 * file).  Tracing off costs one branch per span site; metrics
 * counters are always live.
 *
 * Parallelism: --jobs N (or the APEX_JOBS environment variable) runs
 * analyze/explore/sweep on a work-stealing pool with N lanes; N = 0
 * asks for one lane per hardware thread.  The default (1) is the
 * sequential schedule, and results are byte-identical for any N.
 * --cache-dir DIR adds a content-addressed on-disk evaluation cache,
 * so repeated sweeps become incremental.  Runtime counters (tasks
 * run/stolen, cache hits/misses, per-stage time) are printed to
 * stderr under --diagnostics.
 *
 * Durability: with --cache-dir, every completed sweep cell is also
 * checkpointed to a crash-safe journal (DIR/sweep.journal), and
 * --resume replays it so a crashed or killed sweep continues from
 * where it stopped — the resumed report is byte-identical to an
 * uninterrupted run.  SIGINT/SIGTERM cancel the sweep cooperatively:
 * completed cells are reported (and journaled), unstarted cells are
 * recorded as cancelled, and the process exits with the kCancelled
 * exit code.
 *
 * Pressure: --deadline MS bounds the whole sweep (cells that cannot
 * start in time are recorded as timeouts) and --cell-deadline MS
 * bounds each evaluation; a cell whose budget expires is retried
 * once with cheap fallback knobs and marked "degraded" in the report
 * instead of failing the sweep.
 *
 * Isolation: --isolate process (default: thread) runs each
 * evaluation in a supervised pool of forked worker processes, so a
 * crashing, hanging or OOM-killed cell costs one worker instead of
 * the sweep.  A dead worker is restarted under exponential backoff
 * and its cell retried up to --cell-retries times (default 2); a
 * cell that keeps killing workers is quarantined — reported (and
 * journaled) as a WorkerCrashed failure with the death cause
 * (crash / oom / hang) — and the sweep continues.  With no faults
 * the report is byte-identical to --isolate thread at any --jobs.
 *
 * Exit codes: 0 on success, otherwise the stage-specific code from
 * exitCodeFor() (2 usage, 3 parse, 4 invalid IR, 7 mapping, 8
 * placement, 9 routing, 10 capacity, 12 timeout, 14 cancelled,
 * 15 worker crashed, 16 service unavailable, 17 resource
 * exhausted — disk full while journaling, see DESIGN.md Sec. 7h).
 * Pass --diagnostics to explore/sweep to dump the structured
 * per-stage diagnostic trail.
 *
 * Built-in application names: camera harris gaussian unsharp resnet
 * mobilenet laplacian stereo fast.
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "core/deadline.hpp"
#include "core/evaluate.hpp"
#include "core/hetero.hpp"
#include "core/status.hpp"
#include "core/sweep.hpp"
#include "ir/serialize.hpp"
#include "pe/verilog.hpp"
#include "pe/verilog_tb.hpp"
#include "pipeline/pe_pipeline.hpp"
#include "runtime/cache.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/thread_pool.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/version.hpp"

namespace {

using namespace apex;

/** Set by the SIGINT/SIGTERM handler; polled by the sweep's tasks.
 * A lock-free atomic store is async-signal-safe, and the sweep
 * flushes its journal on every append, so an interrupted run loses
 * nothing that had completed. */
std::atomic<bool> g_interrupted{false};

extern "C" void
onInterrupt(int /*signum*/)
{
    g_interrupted.store(true, std::memory_order_relaxed);
}

std::optional<apps::AppInfo>
findApp(const std::string &name)
{
    for (apps::AppInfo &app : apps::allApps())
        if (app.name == name)
            return std::move(app);
    return std::nullopt;
}

/** Load either a built-in app or an .apexir file; on failure returns
 * the typed reason (kInvalidArgument or the parse/validate status). */
Result<apps::AppInfo>
loadApp(const std::string &source)
{
    if (auto app = findApp(source))
        return std::move(*app);
    std::ifstream is(source);
    if (!is)
        return Status(ErrorCode::kInvalidArgument,
                      "unknown app or file '" + source + "'");
    std::stringstream buffer;
    buffer << is.rdbuf();
    auto graph = ir::parseGraph(buffer.str());
    if (!graph)
        return graph.status().withContext("loading '" + source +
                                          "'");
    apps::AppInfo app;
    app.name = source;
    app.description = "user graph";
    app.domain = apps::Domain::kImageProcessing;
    app.graph = std::move(graph).value();
    app.work_items_per_frame = 1 << 20;
    app.items_per_cycle = 1;
    return app;
}

/** Report a load failure and return its process exit code. */
int
loadFailure(const Status &status)
{
    std::fprintf(stderr, "apexc: %s\n", status.toString().c_str());
    return exitCodeFor(status.code());
}

/** Parse an evaluation level name; unknown names are a usage error,
 * not a silent fallback. */
Result<core::EvalLevel>
parseLevel(const std::string &name)
{
    if (name == "map")
        return core::EvalLevel::kPostMapping;
    if (name == "pnr")
        return core::EvalLevel::kPostPnr;
    if (name == "pipe")
        return core::EvalLevel::kPostPipelining;
    return Status(ErrorCode::kInvalidArgument,
                  "unknown --level '" + name +
                      "' (expected map, pnr or pipe)");
}

const char *
flagValue(int argc, char **argv, const char *flag)
{
    for (int i = 0; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 0; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

/** --isolate MODE, accepting both "--isolate process" and the
 * "--isolate=process" spelling; null when absent. */
const char *
isolateFlag(int argc, char **argv)
{
    if (const char *s = flagValue(argc, argv, "--isolate"))
        return s;
    for (int i = 0; i < argc; ++i)
        if (std::strncmp(argv[i], "--isolate=", 10) == 0)
            return argv[i] + 10;
    return nullptr;
}

/** --jobs N, else $APEX_JOBS, else 1 (sequential).  0 = one lane per
 * hardware thread. */
int
requestedJobs(int argc, char **argv)
{
    if (const char *s = flagValue(argc, argv, "--jobs"))
        return std::atoi(s);
    if (const char *env = std::getenv("APEX_JOBS"))
        return std::atoi(env);
    return 1;
}

/** Pool for the requested job count; null = run sequentially. */
std::unique_ptr<runtime::ThreadPool>
makePool(int jobs)
{
    if (jobs == 1)
        return nullptr;
    const int n = jobs <= 0 ? runtime::ThreadPool::defaultParallelism()
                            : jobs;
    if (n <= 1)
        return nullptr;
    return std::make_unique<runtime::ThreadPool>(n);
}

/** --miner-engine dfs|reference (default dfs).  The engines are
 * byte-identical (see tests/mining_differential_test.cpp); the flag
 * exists for differential smoke runs and perf comparisons. */
Status
parseMinerEngine(int argc, char **argv, mining::MinerOptions *miner)
{
    const char *s = flagValue(argc, argv, "--miner-engine");
    if (s == nullptr)
        return Status::okStatus();
    if (std::strcmp(s, "dfs") == 0)
        miner->engine = mining::MinerEngine::kDfsCode;
    else if (std::strcmp(s, "reference") == 0)
        miner->engine = mining::MinerEngine::kReference;
    else
        return Status(ErrorCode::kInvalidArgument,
                      std::string("unknown --miner-engine '") + s +
                          "' (expected dfs or reference)");
    return Status::okStatus();
}

/** --cache-dir DIR => a disk-backed artifact cache; else null. */
std::unique_ptr<runtime::ArtifactCache>
makeCache(int argc, char **argv)
{
    const char *dir = flagValue(argc, argv, "--cache-dir");
    if (dir == nullptr)
        return nullptr;
    runtime::CacheOptions copt;
    copt.disk_dir = dir;
    return std::make_unique<runtime::ArtifactCache>(copt);
}

core::PeVariant
buildVariant(const std::string &kind, const apps::AppInfo &app,
             const core::Explorer &ex,
             runtime::ThreadPool *pool = nullptr,
             const core::EvalOptions &eval = {})
{
    if (kind == "pe1")
        return ex.subsetVariant(app);
    if (kind == "spec")
        return core::bestSpecializedVariant(
            app, ex, model::defaultTech(), pool, eval);
    if (kind == "ip")
        return ex.domainVariant(apps::ipApps(), 1, "pe_ip");
    if (kind == "ml")
        return ex.domainVariant(apps::mlApps(), 1, "pe_ml");
    return ex.baselineVariant();
}

int
cmdApps()
{
    for (const apps::AppInfo &app : apps::allApps()) {
        std::printf("%-10s %-3s %4zu compute ops  %s%s\n",
                    app.name.c_str(),
                    app.domain == apps::Domain::kImageProcessing
                        ? "IP"
                        : "ML",
                    app.graph.computeNodes().size(),
                    app.description.c_str(),
                    app.unseen ? " (held out)" : "");
    }
    return 0;
}

int
cmdAnalyze(int argc, char **argv, const std::string &source)
{
    auto app = loadApp(source);
    if (!app)
        return loadFailure(app.status());
    core::ExplorerOptions options;
    if (const char *s = flagValue(argc, argv, "--support"))
        options.miner.min_support = std::atoi(s);
    if (const char *s = flagValue(argc, argv, "--max-nodes"))
        options.miner.max_pattern_nodes = std::atoi(s);
    if (Status s = parseMinerEngine(argc, argv, &options.miner);
        !s.ok())
        return loadFailure(std::move(s));
    const auto pool = makePool(requestedJobs(argc, argv));
    options.pool = pool.get();
    core::Explorer ex(model::defaultTech(), options);

    const auto patterns = ex.analyze(app->graph);
    std::printf("%zu mergeable frequent subgraphs in %s "
                "(support >= %d, <= %d nodes):\n",
                patterns.size(), app->name.c_str(),
                options.miner.min_support,
                options.miner.max_pattern_nodes);
    int rank = 0;
    for (const auto &p : patterns) {
        std::printf("#%-3d nodes=%d freq=%d mni=%d mis=%d  ops:",
                    rank++, p.core_size, p.frequency, p.mni_support,
                    p.mis_size);
        for (const auto &[op, count] : p.pattern.opHistogram()) {
            if (ir::opIsCompute(op))
                std::printf(" %dx%s", count,
                            std::string(ir::opName(op)).c_str());
        }
        std::printf("\n");
        if (rank >= 12) {
            std::printf("... (%zu more)\n", patterns.size() - rank);
            break;
        }
    }
    return 0;
}

int
cmdExplore(int argc, char **argv, const std::string &source)
{
    auto app = loadApp(source);
    if (!app)
        return loadFailure(app.status());
    const char *variant_flag = flagValue(argc, argv, "--variant");
    const char *level_flag = flagValue(argc, argv, "--level");
    const std::string kind = variant_flag ? variant_flag : "base";
    const std::string level_name = level_flag ? level_flag : "pipe";
    const auto parsed_level = parseLevel(level_name);
    if (!parsed_level)
        return loadFailure(parsed_level.status());
    const core::EvalLevel level = *parsed_level;

    const auto pool = makePool(requestedJobs(argc, argv));
    const auto cache = makeCache(argc, argv);
    core::ExplorerOptions ex_options;
    ex_options.pool = pool.get();
    core::Explorer ex(model::defaultTech(), ex_options);
    core::EvalOptions eval_options;
    eval_options.cache = cache.get();

    // Heterogeneous fabric: the big.LITTLE extension pairs the
    // domain PE for the app's domain with a minimal scalar PE.
    if (kind == "biglittle") {
        const bool is_ip =
            app->domain == apps::Domain::kImageProcessing;
        const auto domain =
            is_ip ? ex.domainVariant(apps::ipApps(), 1, "pe_ip")
                  : ex.domainVariant(apps::mlApps(), 1, "pe_ml");
        const auto r = core::evaluateHetero(
            *app, core::makeBigLittleCgra(domain, "biglittle"),
            level == core::EvalLevel::kPostMapping
                ? core::EvalLevel::kPostMapping
                : core::EvalLevel::kPostPnr,
            model::defaultTech());
        if (!r.success) {
            std::fprintf(stderr, "apexc: %s\n",
                         r.status.toString().c_str());
            return exitCodeFor(r.status.code());
        }
        std::printf("app            %s\n", app->name.c_str());
        std::printf("variant        biglittle (%s + little)\n",
                    domain.name.c_str());
        std::printf("pe_count       %d (big %d + little %d)\n",
                    r.pe_count, r.pe_count_by_type[0],
                    r.pe_count_by_type[1]);
        std::printf("pe_area_um2    %.1f\n", r.pe_area);
        std::printf("pe_energy_pj   %.3f\n", r.pe_energy);
        if (r.fabric_width > 0) {
            std::printf("fabric         %dx%d\n", r.fabric_width,
                        r.fabric_height);
            std::printf("cgra_area_um2  %.1f\n", r.cgra_area);
            std::printf("cgra_energy_pj %.3f\n", r.cgra_energy);
        }
        return 0;
    }

    const auto variant =
        buildVariant(kind, *app, ex, pool.get(), eval_options);
    const auto r = core::evaluate(*app, variant, level,
                                  model::defaultTech(),
                                  eval_options);
    if (hasFlag(argc, argv, "--diagnostics")) {
        if (!r.diagnostics.empty())
            std::fputs(r.diagnostics.toString().c_str(), stderr);
        if (cache != nullptr) {
            const runtime::CacheStats cs = cache->stats();
            std::fprintf(stderr, "cache: hits=%ld misses=%ld\n",
                         cs.hits, cs.misses);
        }
    }
    if (!r.success) {
        std::fprintf(stderr, "apexc: %s\n",
                     r.status.toString().c_str());
        return exitCodeFor(r.status.code());
    }
    std::printf("app            %s\n", app->name.c_str());
    std::printf("variant        %s\n", variant.name.c_str());
    std::printf("level          %s\n", level_name.c_str());
    std::printf("pe_count       %d\n", r.pe_count);
    std::printf("pe_area_um2    %.1f\n", r.pe_area);
    std::printf("pe_energy_pj   %.3f\n", r.pe_energy);
    if (level != core::EvalLevel::kPostMapping) {
        std::printf("fabric         %dx%d\n", r.fabric_width,
                    r.fabric_height);
        std::printf("cgra_area_um2  %.1f\n", r.cgra_area);
        std::printf("cgra_energy_pj %.3f\n", r.cgra_energy);
        std::printf("period_ns      %.3f\n", r.period_ns);
        std::printf("util           pe=%d mem=%d rf=%d io=%d reg=%d "
                    "routing=%d\n",
                    r.util.pes, r.util.mems, r.util.rf_entries,
                    r.util.ios, r.util.regs, r.util.routing_tiles);
    }
    if (level == core::EvalLevel::kPostPipelining) {
        std::printf("pipe_stages    %d\n", r.pipeline_stages);
        std::printf("runtime_ms     %.4f\n", r.runtime_ms);
        std::printf("frames_ms_mm2  %.4f\n", r.frames_per_ms_mm2);
        std::printf("frame_uj       %.3f\n", r.total_energy_uj);
    }
    return 0;
}

int
cmdRtl(int argc, char **argv, const std::string &source)
{
    auto app = loadApp(source);
    if (!app)
        return loadFailure(app.status());
    const char *variant_flag = flagValue(argc, argv, "--variant");
    const char *out_flag = flagValue(argc, argv, "-o");
    const std::string out = out_flag ? out_flag : ".";

    core::Explorer ex;
    core::PeVariant variant = buildVariant(
        variant_flag ? variant_flag : "spec", *app, ex);
    pipeline::pipelinePe(variant.spec, model::defaultTech());

    const std::string v_path = out + "/" + variant.name + ".v";
    const std::string tb_path = out + "/" + variant.name + "_tb.v";
    std::ofstream(v_path) << pe::emitVerilog(variant.spec);
    std::ofstream(tb_path) << pe::emitTestbench(
        variant.spec, pe::defaultConfig(variant.spec));
    std::printf("wrote %s and %s (%d pipeline stages)\n",
                v_path.c_str(), tb_path.c_str(),
                variant.spec.pipeline_stages);
    return 0;
}

int
cmdDump(int argc, char **argv, const std::string &source)
{
    auto app = loadApp(source);
    if (!app)
        return loadFailure(app.status());
    const char *out_flag = flagValue(argc, argv, "-o");
    const std::string text = ir::serialize(app->graph);
    if (out_flag) {
        std::ofstream(out_flag) << text;
        std::printf("wrote %s (%zu bytes)\n", out_flag, text.size());
    } else {
        std::fputs(text.c_str(), stdout);
    }
    return 0;
}

int
cmdSweep(int argc, char **argv)
{
    const char *level_flag = flagValue(argc, argv, "--level");
    const auto parsed_level =
        parseLevel(level_flag ? level_flag : "map");
    if (!parsed_level)
        return loadFailure(parsed_level.status());

    core::SweepOptions options;
    options.level = *parsed_level;

    // One pool serves both the sweep's task graph and the miner's
    // candidate expansion, so nested parallelism shares the lanes.
    const auto pool = makePool(requestedJobs(argc, argv));
    const auto cache = makeCache(argc, argv);
    options.pool = pool.get();
    options.cache = cache.get();

    // Durability: the journal lives next to the artifact cache.
    const char *cache_dir = flagValue(argc, argv, "--cache-dir");
    if (cache_dir != nullptr)
        options.journal_dir = cache_dir;
    options.resume = hasFlag(argc, argv, "--resume");
    if (options.resume && cache_dir == nullptr)
        return loadFailure(
            Status(ErrorCode::kInvalidArgument,
                   "--resume requires --cache-dir (the journal "
                   "lives in the cache directory)"));

    // Pressure: wall-clock budgets for the sweep and for each cell.
    bool deadline_bounded = false;
    if (const char *s = flagValue(argc, argv, "--deadline")) {
        options.deadline = Deadline::after(std::atof(s));
        deadline_bounded = true;
    }
    if (const char *s = flagValue(argc, argv, "--cell-deadline"))
        options.cell_deadline_ms = std::atof(s);

    // Isolation: crash containment behind forked worker processes.
    if (const char *s = isolateFlag(argc, argv)) {
        if (std::strcmp(s, "process") == 0)
            options.isolate = core::IsolateMode::kProcess;
        else if (std::strcmp(s, "thread") != 0)
            return loadFailure(Status(
                ErrorCode::kInvalidArgument,
                std::string("unknown --isolate mode '") + s +
                    "' (expected thread or process)"));
    }
    if (const char *s = flagValue(argc, argv, "--cell-retries"))
        options.cell_retries = std::atoi(s);

    // Cooperative shutdown: completed cells stay in the report (and
    // journal); unstarted ones are recorded as cancelled.
    options.cancel = &g_interrupted;
    std::signal(SIGINT, onInterrupt);
    std::signal(SIGTERM, onInterrupt);

    core::ExplorerOptions ex_options;
    ex_options.pool = pool.get();
    // Variant construction (mining, merging) runs under the sweep
    // deadline too — a sweep bound means the whole command.
    ex_options.miner.deadline = options.deadline;
    ex_options.merge.deadline = options.deadline;
    if (Status s = parseMinerEngine(argc, argv, &ex_options.miner);
        !s.ok())
        return loadFailure(std::move(s));
    core::Explorer ex(model::defaultTech(), ex_options);
    const auto apps_list = apps::allApps();
    const auto outcome = core::runSweep(apps_list, ex,
                                        model::defaultTech(),
                                        options);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);

    // Batch and service-client sweeps print through the same
    // renderer, so their stdout is byte-identical by construction.
    std::fputs(service::renderSweepText(outcome.entries,
                                        outcome.report)
                   .c_str(),
               stdout);
    if (hasFlag(argc, argv, "--diagnostics")) {
        if (!outcome.report.diagnostics.empty())
            std::fputs(
                outcome.report.diagnostics.toString().c_str(),
                stderr);
        std::fprintf(stderr, "runtime: %s\n",
                     outcome.stats.toString().c_str());
        // Per-cell stage-time breakdown (filled while --trace is on).
        const std::string stage_table =
            outcome.report.stageTimeTable();
        if (!stage_table.empty()) {
            std::fputs("stage times (ms, from spans):\n", stderr);
            std::fputs(stage_table.c_str(), stderr);
        }
    }

    // An interrupted sweep reports what completed, then exits with
    // the documented cancellation code.
    if (g_interrupted.load())
        return exitCodeFor(ErrorCode::kCancelled);
    // A journal that could not keep its durability promise (disk
    // full mid-run) makes the printed report valid but the on-disk
    // checkpoint a lie; fail loudly so nobody --resumes against it.
    if (!outcome.durability.ok()) {
        std::fprintf(stderr, "apexc: %s\n",
                     outcome.durability.toString().c_str());
        return exitCodeFor(outcome.durability.code());
    }
    // A bounded sweep that evaluated nothing because its deadline
    // (possibly already expired at launch, e.g. --deadline 0) beat
    // every cell exits with the timeout code — not with whichever
    // failure happened to be recorded first.
    if (outcome.report.evaluated == 0 && deadline_bounded &&
        options.deadline.expired())
        return exitCodeFor(ErrorCode::kTimeout);
    // The sweep itself succeeds as long as something was evaluated;
    // a sweep where nothing ran reports its first failure's code.
    if (outcome.report.evaluated == 0 &&
        !outcome.report.failures.empty())
        return exitCodeFor(
            outcome.report.failures.front().status.code());
    return 0;
}

/** Report a service-side failure and map it to an exit code. */
int
serviceFailure(const Status &status)
{
    std::fprintf(stderr, "apexc: %s\n", status.toString().c_str());
    return exitCodeFor(status.code());
}

/** Set once `client sweep` has written its *merged* trace file, so
 * the end-of-main artifact writer does not overwrite it with the
 * client-local-only view. */
bool g_merged_trace_written = false;

bool writeArtifact(const char *path, const std::string &json);

/**
 * Write the end-to-end trace of one client request: the client's own
 * spans plus the daemon's slice for @p trace_id (null @p client, or a
 * v2 daemon, degrades to the client lane alone).  Daemon spans split
 * into an "apexd" lane (io + executor threads) and an "apexd workers"
 * lane (pool worker lanes), so the merged file shows the request
 * crossing all three processes under one trace id.
 */
bool
writeMergedTrace(const char *path, service::Client *client,
                 std::uint64_t trace_id)
{
    std::vector<telemetry::TraceProcessSlice> slices;
    telemetry::TraceProcessSlice local;
    local.pid = 1;
    local.process_name = "client";
    local.events = telemetry::eventsForTrace(trace_id);
    local.dropped = telemetry::droppedEvents();
    slices.push_back(std::move(local));

    if (client != nullptr) {
        service::TraceReply remote;
        if (const Status s = client->trace(trace_id, &remote);
            s.ok()) {
            telemetry::TraceProcessSlice daemon;
            daemon.pid = 2;
            daemon.process_name = "apexd";
            daemon.dropped = remote.dropped;
            telemetry::TraceProcessSlice workers;
            workers.pid = 3;
            workers.process_name = "apexd workers";
            for (telemetry::SpanEvent &ev : remote.events)
                (ev.lane >= 0 ? workers : daemon)
                    .events.push_back(std::move(ev));
            slices.push_back(std::move(daemon));
            slices.push_back(std::move(workers));
        } else {
            std::fprintf(stderr,
                         "apexc: %s; writing a client-only trace\n",
                         s.toString().c_str());
        }
    }
    g_merged_trace_written = true;
    return writeArtifact(path,
                         telemetry::chromeTraceJsonMerged(slices));
}

/** `apexc client top`: render the daemon's statusz ring, once or as
 * a live refreshing view (--interval MS); --json emits the raw ring
 * for scripts. */
int
cmdClientTop(int argc, char **argv, service::Client &client)
{
    int max_samples = 0;
    if (const char *s = flagValue(argc, argv, "--samples"))
        max_samples = std::atoi(s);
    const char *interval = flagValue(argc, argv, "--interval");
    const double interval_ms =
        interval != nullptr ? std::atof(interval) : 0.0;
    const bool json = hasFlag(argc, argv, "--json");

    std::signal(SIGINT, onInterrupt);
    std::signal(SIGTERM, onInterrupt);
    for (;;) {
        service::StatuszReply reply;
        if (Status s = client.statusz(max_samples, &reply); !s.ok())
            return serviceFailure(s);
        if (json) {
            std::fputs(service::statuszJson(reply).c_str(), stdout);
        } else {
            if (interval_ms > 0) // Clear + home between refreshes.
                std::fputs("\033[2J\033[H", stdout);
            std::fputs(service::renderStatuszText(reply).c_str(),
                       stdout);
        }
        std::fflush(stdout);
        if (interval_ms <= 0 || g_interrupted.load())
            break;
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(interval_ms));
        if (g_interrupted.load())
            break;
    }
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    client.goodbye();
    return 0;
}

/** Dial the daemon named by --socket PATH (or --port N, loopback
 * TCP).  A connection or handshake failure exits kUnavailable. */
Status
connectDaemon(int argc, char **argv, service::Client *client)
{
    if (const char *path = flagValue(argc, argv, "--socket"))
        return client->connect(path);
    if (const char *port = flagValue(argc, argv, "--port"))
        return client->connectTcp(std::atoi(port));
    return Status(ErrorCode::kInvalidArgument,
                  "client requires --socket PATH or --port N");
}

/**
 * `apexc client <sweep|info|metrics>` — run the request against a
 * running apexd.  The sweep path reuses the batch flag names; the
 * daemon owns the execution resources (--jobs here would be
 * meaningless), and stdout carries exactly the bytes batch mode
 * would print.
 *
 * --retries N opts the sweep path into the self-healing client
 * (service::runSweepResilient): connect failures, load-shedding
 * rejects and a daemon dying mid-sweep are absorbed by up to N
 * reconnect + resubmit rounds with exponential backoff
 * (--retry-base-ms, doubled per round, jittered, stretched to the
 * daemon's retry_after hint).  Resubmission is idempotent — the
 * daemon coalesces on the sweep fingerprint and journals per
 * fingerprint — so the report is byte-identical however many
 * attempts it took.
 */
int
cmdClient(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: apexc client <sweep|info|metrics|top> "
                     "--socket PATH [--port N] "
                     "[--retries N [--retry-base-ms MS]] "
                     "[--trace FILE] [--interval MS] [--json]\n");
        return 2;
    }
    const std::string what = argv[2];
    // The resilient sweep path dials (and redials) for itself — a
    // daemon that is still restarting must not fail the command at
    // the first connect.
    const bool resilient =
        what == "sweep" &&
        flagValue(argc, argv, "--retries") != nullptr;
    service::Client client;
    if (!resilient) {
        if (Status s = connectDaemon(argc, argv, &client); !s.ok())
            return serviceFailure(s);
    }

    if (what == "info") {
        service::InfoReply info;
        if (Status s = client.info(&info); !s.ok())
            return serviceFailure(s);
        std::printf("server    %s\n", info.version.c_str());
        std::printf("commit    %s\n", info.commit.c_str());
        std::printf("flags     %s\n", info.flags.c_str());
        std::printf("protocol  v%d\n", info.protocol);
        client.goodbye();
        return 0;
    }
    if (what == "metrics") {
        std::string json;
        if (Status s = client.metrics(&json); !s.ok())
            return serviceFailure(s);
        std::fputs(json.c_str(), stdout);
        client.goodbye();
        return 0;
    }
    if (what == "top")
        return cmdClientTop(argc, argv, client);
    if (what != "sweep") {
        std::fprintf(stderr,
                     "apexc client: unknown request '%s' (expected "
                     "sweep, info, metrics or top)\n",
                     what.c_str());
        return 2;
    }

    service::SweepRequest request;
    request.id = 1;
    // Every client request gets a trace id, whether or not --trace
    // was given: the daemon stamps it on the request's spans either
    // way, so a trace can still be fetched after the fact.
    request.trace_id = service::mintTraceId();
    if (const char *s = flagValue(argc, argv, "--level"))
        request.level = s;
    if (const auto level = parseLevel(request.level); !level)
        return loadFailure(level.status());
    if (const char *s = isolateFlag(argc, argv))
        request.isolate = s;
    if (const char *s = flagValue(argc, argv, "--cell-retries"))
        request.cell_retries = std::atoi(s);
    if (const char *s = flagValue(argc, argv, "--deadline"))
        request.deadline_ms = std::atof(s);
    if (const char *s = flagValue(argc, argv, "--cell-deadline"))
        request.cell_deadline_ms = std::atof(s);
    if (const char *s = flagValue(argc, argv, "--priority"))
        request.priority = std::atoi(s);
    request.want_progress = hasFlag(argc, argv, "--progress");

    // Progress and the coalescing verdict go to stderr: stdout is
    // reserved for the byte-identity contract with batch mode.
    const auto on_progress = [](const service::SweepProgressFrame &p) {
        std::fprintf(stderr, "progress %d/%d %s/%s\n", p.done,
                     p.total, p.app.c_str(), p.variant.c_str());
    };
    service::SweepReply reply;

    // Client-local spans carry the same trace id as the daemon's, so
    // the merged trace file reads as one request across processes.
    const char *trace_path = flagValue(argc, argv, "--trace");
    telemetry::ScopedTraceId trace_scope;
    trace_scope.set(request.trace_id);

    if (resilient) {
        service::RetryPolicy policy;
        policy.max_attempts =
            std::atoi(flagValue(argc, argv, "--retries")) + 1;
        if (const char *s = flagValue(argc, argv, "--retry-base-ms"))
            policy.base_ms = std::atof(s);
        const char *path = flagValue(argc, argv, "--socket");
        const char *port = flagValue(argc, argv, "--port");
        if (path == nullptr && port == nullptr)
            return serviceFailure(Status(
                ErrorCode::kInvalidArgument,
                "client requires --socket PATH or --port N"));
        service::RetryStats stats;
        Status s;
        {
            APEX_SPAN("client.sweep");
            s = service::runSweepResilient(
                path != nullptr ? path : "",
                port != nullptr ? std::atoi(port) : 0, request,
                policy, &reply, on_progress, &stats);
        }
        if (!s.ok())
            return serviceFailure(s);
        if (stats.attempts > 1)
            std::fprintf(stderr,
                         "apexc: sweep landed after %d attempts "
                         "(%d rejects, %d disconnects)\n",
                         stats.attempts, stats.rejects,
                         stats.disconnects);
        std::fputs(service::renderSweepText(reply.entries,
                                            reply.report)
                       .c_str(),
                   stdout);
        if (trace_path != nullptr) {
            // The resilient path owns (and may have cycled) its
            // connection; dial a fresh one for the trace slice and
            // degrade to client-only if the daemon is gone again.
            service::Client trace_client;
            const bool connected =
                connectDaemon(argc, argv, &trace_client).ok();
            (void)writeMergedTrace(
                trace_path, connected ? &trace_client : nullptr,
                request.trace_id);
            if (connected)
                trace_client.goodbye();
        }
        return service::sweepExitCode(reply);
    }

    service::SweepAck ack;
    Status s;
    {
        APEX_SPAN("client.sweep");
        s = client.runSweep(request, &reply, on_progress, &ack);
    }
    if (!s.ok())
        return serviceFailure(s);
    if (ack.coalesced)
        std::fprintf(stderr,
                     "apexc: coalesced with an identical in-flight "
                     "sweep\n");
    std::fputs(
        service::renderSweepText(reply.entries, reply.report).c_str(),
        stdout);
    if (trace_path != nullptr)
        (void)writeMergedTrace(trace_path, &client,
                               request.trace_id);
    client.goodbye();
    return service::sweepExitCode(reply);
}

/** Dispatch to the requested subcommand (the body of main, split out
 * so telemetry artifacts can be written after any exit path). */
int
runCommand(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(
            stderr,
            "usage: apexc <apps|analyze|explore|rtl|dump|sweep|"
            "client|--version> [args]\n");
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--version" || cmd == "version") {
        std::printf("%s\n", service::versionString().c_str());
        return 0;
    }
    if (cmd == "apps")
        return cmdApps();
    if (cmd == "sweep")
        return cmdSweep(argc, argv);
    if (cmd == "client")
        return cmdClient(argc, argv);
    if (argc < 3) {
        std::fprintf(stderr, "apexc %s: missing application\n",
                     cmd.c_str());
        return 2;
    }
    const std::string source = argv[2];
    if (cmd == "analyze")
        return cmdAnalyze(argc, argv, source);
    if (cmd == "explore")
        return cmdExplore(argc, argv, source);
    if (cmd == "rtl")
        return cmdRtl(argc, argv, source);
    if (cmd == "dump")
        return cmdDump(argc, argv, source);
    std::fprintf(stderr, "apexc: unknown command '%s'\n",
                 cmd.c_str());
    return 2;
}

/** Write one telemetry artifact; a write failure is reported but
 * never overrides the command's own exit status. */
bool
writeArtifact(const char *path, const std::string &json)
{
    std::ofstream os(path, std::ios::binary);
    os << json;
    os.flush();
    if (!os) {
        std::fprintf(stderr, "apexc: cannot write '%s'\n", path);
        return false;
    }
    return true;
}

/** Emit --trace / --metrics-out files (no-ops when not requested).
 * @return false when a requested artifact could not be written. */
bool
writeTelemetryArtifacts(const char *trace_path,
                        const char *metrics_path)
{
    bool ok = true;
    // `client sweep --trace` writes a *merged* multi-process trace
    // itself; overwriting it here would lose the daemon lanes.
    if (trace_path != nullptr && !g_merged_trace_written)
        ok &= writeArtifact(trace_path,
                            telemetry::chromeTraceJson());
    if (metrics_path != nullptr)
        ok &= writeArtifact(metrics_path,
                            telemetry::Registry::instance()
                                .jsonDump());
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        // Telemetry flags apply to every subcommand: tracing must be
        // on before any work runs, artifacts are written after it.
        const char *trace_path = flagValue(argc, argv, "--trace");
        const char *metrics_path =
            flagValue(argc, argv, "--metrics-out");
        if (trace_path != nullptr)
            telemetry::setTracingEnabled(true);
        // --metrics-interval MS: rewrite the metrics file while the
        // command runs (long sweeps become observable in flight).
        std::unique_ptr<telemetry::PeriodicMetricsWriter> periodic;
        if (const char *s =
                flagValue(argc, argv, "--metrics-interval")) {
            if (metrics_path == nullptr) {
                std::fprintf(stderr,
                             "apexc: --metrics-interval requires "
                             "--metrics-out FILE\n");
                return exitCodeFor(ErrorCode::kInvalidArgument);
            }
            periodic =
                std::make_unique<telemetry::PeriodicMetricsWriter>(
                    metrics_path, std::atof(s));
        }
        const int rc = runCommand(argc, argv);
        periodic.reset(); // Join the flusher (final flush included).
        if (!writeTelemetryArtifacts(trace_path, metrics_path) &&
            rc == 0)
            return exitCodeFor(ErrorCode::kInvalidArgument);
        return rc;
    } catch (const ApexError &e) {
        std::fprintf(stderr, "apexc: %s\n",
                     e.status().toString().c_str());
        return exitCodeFor(e.code());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "apexc: unexpected error: %s\n",
                     e.what());
        return exitCodeFor(ErrorCode::kInternal);
    }
}
