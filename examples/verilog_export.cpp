/**
 * Verilog export: generate the RTL of the baseline PE and of a
 * machine-learning domain PE (PE ML), pipeline the latter, and write
 * both modules plus the CGRA configuration bitstream of a mapped
 * application to ./apex_rtl_out/.
 *
 * Run:  ./build/examples/verilog_export
 */
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cgra/bitstream.hpp"
#include "core/evaluate.hpp"
#include "mapper/select.hpp"
#include "pe/baseline.hpp"
#include "pe/verilog.hpp"
#include "pipeline/pe_pipeline.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    const std::filesystem::path out_dir = "apex_rtl_out";
    std::filesystem::create_directories(out_dir);

    auto write = [&](const std::filesystem::path &name,
                     const std::string &text) {
        std::ofstream os(out_dir / name);
        os << text;
        std::printf("  wrote %s (%zu bytes)\n",
                    (out_dir / name).string().c_str(), text.size());
    };

    // Baseline PE.
    const pe::PeSpec base = pe::baselinePe();
    write("pe_base.v", pe::emitVerilog(base));

    // PE ML, automatically pipelined.
    core::PeVariant pe_ml = ex.domainVariant(apps::mlApps(), 1,
                                             "pe_ml");
    const auto pipe = pipeline::pipelinePe(pe_ml.spec, tech);
    std::printf("  pe_ml: %d stage(s), %.2f -> %.2f ns\n",
                pipe.stages, pipe.unpipelined, pipe.period);
    write("pe_ml.v", pe::emitVerilog(pe_ml.spec));

    // Map MobileNet onto PE ML and emit its bitstream.
    const auto app = apps::mobilenetLayer(2);
    mapper::RewriteRuleSynthesizer synth(pe_ml.spec);
    mapper::InstructionSelector selector(
        synth.synthesizeLibrary(pe_ml.patterns));
    const auto sel = selector.map(app.graph);
    if (!sel.success) {
        std::printf("mapping failed: %s\n", sel.error.c_str());
        return 1;
    }
    const cgra::Fabric fabric(32, 16);
    const auto placement = cgra::place(fabric, sel.mapped);
    const auto routing = cgra::route(fabric, placement);
    if (!placement.success || !routing.success) {
        std::printf("place-and-route failed\n");
        return 1;
    }
    const auto bs = cgra::generateBitstream(
        fabric, sel.mapped, selector.rules(), pe_ml.spec, placement,
        routing);
    std::string hex;
    char buf[32];
    for (std::uint64_t w : bs.words) {
        std::snprintf(buf, sizeof buf, "%016llx\n",
                      static_cast<unsigned long long>(w));
        hex += buf;
    }
    write("mobilenet_on_pe_ml.bit.hex", hex);
    std::printf("  bitstream: %d bits, digest %016llx\n", bs.bits,
                static_cast<unsigned long long>(bs.digest()));
    return 0;
}
