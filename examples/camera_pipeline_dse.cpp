/**
 * Camera-pipeline design-space exploration (the Sec. 5.1 study as a
 * library user would run it): generate PE Base, PE 1, PE 2..4 and
 * PE Spec for the camera pipeline, evaluate each at all three levels,
 * and print the exploration table.
 *
 * Run:  ./build/examples/camera_pipeline_dse
 */
#include <cstdio>

#include "cgra/place.hpp"
#include "cgra/route.hpp"
#include "cgra/visualize.hpp"
#include "core/evaluate.hpp"
#include "mapper/report.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;
    const auto app = apps::cameraPipeline();

    std::printf("Analyzing %s (%zu compute ops, %d px/cycle)...\n",
                app.name.c_str(), app.graph.computeNodes().size(),
                app.items_per_cycle);
    const auto patterns = ex.analyze(app.graph);
    std::printf("  %zu mergeable frequent subgraphs", patterns.size());
    if (!patterns.empty()) {
        std::printf("; best: %d nodes with MIS %d",
                    patterns[0].core_size, patterns[0].mis_size);
    }
    std::printf("\n\n");

    std::vector<core::PeVariant> variants;
    variants.push_back(ex.baselineVariant());
    variants.push_back(ex.subsetVariant(app));
    for (int k = 1; k <= ex.options().max_merged_subgraphs; ++k)
        variants.push_back(ex.specializedVariant(app, k));
    variants.push_back(core::bestSpecializedVariant(app, ex, tech));

    std::printf("%-18s %6s %10s %12s %12s %12s %10s\n", "variant",
                "#PE", "PEum2/PE", "PE area", "CGRA area",
                "CGRA pJ/px", "f/ms/mm2");
    for (const auto &v : variants) {
        const auto r = core::evaluate(
            app, v, core::EvalLevel::kPostPipelining, tech);
        if (!r.success) {
            std::printf("%-18s  FAILED: %s\n", v.name.c_str(),
                        r.error.c_str());
            continue;
        }
        std::printf("%-18s %6d %10.1f %12.0f %12.0f %12.2f %10.3f\n",
                    v.name.c_str(), r.pe_count,
                    r.pe_area / r.pe_count, r.pe_area, r.cgra_area,
                    r.cgra_energy, r.frames_per_ms_mm2);
    }

    std::printf("\nEach row is a full flow: mining -> merging -> PE "
                "generation -> rewrite-rule synthesis -> mapping -> "
                "PE/app pipelining -> place & route -> evaluation.\n");

    // Deep dive on the chosen PE Spec: compiler report + floorplan.
    const core::PeVariant spec_variant = variants.back();
    mapper::RewriteRuleSynthesizer synth(spec_variant.spec);
    mapper::InstructionSelector selector(
        synth.synthesizeLibrary(spec_variant.patterns));
    const auto sel = selector.map(app.graph);
    if (sel.success) {
        std::printf("\n%s",
                    mapper::mappingReport(sel, selector.rules())
                        .c_str());
        const cgra::Fabric fabric(32, 16);
        const auto placement = cgra::place(fabric, sel.mapped);
        if (placement.success) {
            const auto routing = cgra::route(fabric, placement);
            if (routing.success) {
                std::printf("\n%s",
                            cgra::visualize(fabric, sel.mapped,
                                            placement, routing)
                                .c_str());
            }
        }
    }
    return 0;
}
