/**
 * Domain PE generation (Sec. 5.2): build PE IP from the four image-
 * processing applications, then show that it generalizes — it also
 * accelerates three applications that were never analyzed (Laplacian
 * pyramid, stereo, FAST corner).
 *
 * Run:  ./build/examples/domain_pe_generation
 */
#include <cstdio>

#include "core/evaluate.hpp"
#include "pe/spec.hpp"

int
main()
{
    using namespace apex;
    const auto &tech = model::defaultTech();
    core::Explorer ex;

    const auto ip_apps = apps::ipApps();
    std::printf("Generating PE IP from:");
    for (const auto &a : ip_apps)
        std::printf(" %s", a.name.c_str());
    std::printf("\n\n");

    const core::PeVariant pe_ip =
        ex.domainVariant(ip_apps, 1, "pe_ip");
    std::printf("%s\n", pe::describe(pe_ip.spec, tech).c_str());

    const core::PeVariant base = ex.baselineVariant();

    auto show = [&](const apps::AppInfo &app, bool unseen) {
        const auto rb = core::evaluate(
            app, base, core::EvalLevel::kPostMapping, tech);
        const auto ri = core::evaluate(
            app, pe_ip, core::EvalLevel::kPostMapping, tech);
        if (!rb.success || !ri.success) {
            std::printf("  %-10s FAILED (%s)\n", app.name.c_str(),
                        (rb.success ? ri.error : rb.error).c_str());
            return;
        }
        std::printf("  %-10s%s base: %3d PEs %8.0f um^2 %7.2f pJ | "
                    "pe_ip: %3d PEs %8.0f um^2 %7.2f pJ "
                    "(area %+.0f%%, energy %+.0f%%)\n",
                    app.name.c_str(), unseen ? "*" : " ",
                    rb.pe_count, rb.pe_area, rb.pe_energy,
                    ri.pe_count, ri.pe_area, ri.pe_energy,
                    100.0 * (ri.pe_area - rb.pe_area) / rb.pe_area,
                    100.0 * (ri.pe_energy - rb.pe_energy) /
                        rb.pe_energy);
    };

    std::printf("Analyzed applications:\n");
    for (const auto &app : ip_apps)
        show(app, false);
    std::printf("\nUnseen applications (*never analyzed — Fig. 13):\n");
    for (const auto &app : apps::unseenApps())
        show(app, true);

    std::printf("\nPE IP is *domain*-specialized, not application-"
                "specialized: the unseen applications still map with "
                "fewer, cheaper PEs than the general-purpose "
                "baseline.\n");
    return 0;
}
